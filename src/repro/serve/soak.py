"""Long-haul soak harness for ``repro serve``: load + live sampling.

``repro bench-serve --soak`` runs an in-process daemon under a
continuous open-loop load for a configured duration while a sampler
task scrapes it from the outside -- through the ``metrics``/``health``
protocol ops *and* the ``--metrics-port`` HTTP endpoint (every HTTP
body is pushed through :func:`~repro.obs.prometheus.parse_prometheus_text`,
so an exposition-format regression fails the soak, not the scraper).
Each sample lands in a time-series JSONL artifact::

    {"schema": "repro.bench.soak/1", "kind": "header", "config": {...}}
    {"kind": "sample", "t_s": 2.0, "rss_mb": ..., "queue_depth": ...,
     "requests": ..., "errors": ..., "interval_latency_ms_mean": ...,
     "tenant_solve_requests": {"campus-exp": ..., ...}}
    ...
    {"kind": "summary", "sent": ..., "errors": 0,
     "conservation": {"exact": true, ...}, "drift": {...}}

This is the CI-sized precursor to the ROADMAP's hours-long soak: the
artifact's deterministic fields (schema, error count, **conservation**
-- the per-tenant ``serve.tenant.requests{op=solve}`` counters must sum
*exactly* to the load generator's sent count -- Prometheus parse
failures) are gated by ``benchmarks/check_soak_regression.py``, and
:func:`detect_drift` flags the leak shapes a soak exists to catch:
monotonically climbing RSS, queue depth, or per-interval latency.

All timing is sim-time-free wall clock (``time.perf_counter``); RSS
comes from ``/proc/self/status`` read off-loop, so the sampler never
blocks the event loop it is observing.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.solver_cache import SolverCache, use_solver_cache
from repro.obs.metrics import decode_series
from repro.obs.prometheus import PrometheusParseError, parse_prometheus_text
from repro.serve.bench import BenchConfig, build_queries, demo_registry, run_open_loop
from repro.serve.protocol import dumps
from repro.serve.server import ScheduleServer, ServerConfig

__all__ = ["SOAK_SCHEMA", "SoakConfig", "detect_drift", "run_soak"]

SOAK_SCHEMA = "repro.bench.soak/1"

#: drift verdict thresholds: a signal drifts when its last-third mean
#: exceeds its first-third mean by this factor AND most inter-sample
#: deltas are increases (a spiky-but-stable signal fails the second
#: test, a slow monotone leak passes both)
_DRIFT_RATIO = 1.3
_DRIFT_INCREASE_FRACTION = 0.6


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run (defaults sized for the CI smoke job)."""

    duration_s: float = 30.0
    sample_every_s: float = 2.0
    rate_qps: float = 300.0
    seed: int = 2005
    batch_window_s: float = 0.002
    max_batch: int = 256
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max in-flight cap must be >= 1, got {self.max_inflight}"
            )
        if self.sample_every_s <= 0:
            raise ValueError(
                f"sample interval must be positive, got {self.sample_every_s}"
            )
        if self.sample_every_s > self.duration_s:
            raise ValueError(
                f"sample interval {self.sample_every_s} exceeds duration "
                f"{self.duration_s}"
            )
        if self.rate_qps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_qps}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "sample_every_s": self.sample_every_s,
            "rate_qps": self.rate_qps,
            "seed": self.seed,
            "batch_window_s": self.batch_window_s,
            "max_batch": self.max_batch,
            "max_inflight": self.max_inflight,
        }


# ----------------------------------------------------------------------
# sampling plumbing
# ----------------------------------------------------------------------
def _read_rss_mb() -> float | None:
    """Resident set size in MB from ``/proc/self/status`` (Linux); the
    soak reports ``None`` per sample where the file is unavailable."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        return None
    return None


async def _protocol_request(
    host: str, port: int, payload: dict[str, Any]
) -> dict[str, Any]:
    """One request over a fresh connection (the sampler's out-of-band
    channel, so it never competes with the load connection's pipeline)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((dumps(payload) + "\n").encode())
        await writer.drain()
        raw = await reader.readline()
    finally:
        writer.close()
        await writer.wait_closed()
    if not raw:
        raise ConnectionError("server closed the sampler connection")
    data = json.loads(raw)
    if not isinstance(data, dict) or not data.get("ok", False):
        raise ConnectionError(f"sampler request failed: {data!r}")
    return data


async def _http_get(host: str, port: int, path: str) -> tuple[int, str]:
    """Minimal HTTP GET against the metrics endpoint; returns
    (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.decode().partition("\r\n\r\n")
    status_line = head.split("\r\n", 1)[0]
    return int(status_line.split()[1]), body


def _tenant_solve_counts(metrics: dict[str, Any]) -> dict[str, float]:
    """Per-tenant solve-request counts from a metrics snapshot.

    Filters the labeled ``serve.tenant.requests`` counters to
    ``op=solve`` so the sampler's own ``metrics``/``health`` traffic
    never pollutes the conservation check.
    """
    counts: dict[str, float] = {}
    for key, value in metrics.get("counters", {}).items():
        base, labels = decode_series(key)
        if base == "serve.tenant.requests" and labels.get("op") == "solve":
            tenant = labels.get("tenant", "-")
            counts[tenant] = counts.get(tenant, 0.0) + float(value)
    return counts


# ----------------------------------------------------------------------
# drift detection
# ----------------------------------------------------------------------
def detect_drift(values: list[float], *, min_last_mean: float = 0.0) -> dict[str, Any]:
    """Flag a monotonically climbing signal across soak samples.

    Compares the first-third mean against the last-third mean and
    counts the fraction of inter-sample deltas that are increases; the
    signal *drifts* when the last third is more than ``_DRIFT_RATIO``
    times the first **and** at least ``_DRIFT_INCREASE_FRACTION`` of
    steps went up.  Too few samples (< 6) is an automatic non-verdict.

    ``min_last_mean`` suppresses the verdict while the signal's
    last-third mean stays below an absolute floor: small-integer
    signals like queue depth bounce between 0 and 2 on a short run,
    and a 0.5 -> 2.0 "ratio of 4" there is noise, not a leak (a real
    backlog grows without bound and clears any floor).
    """
    clean = [float(v) for v in values if v is not None and math.isfinite(float(v))]
    if len(clean) < 6:
        return {
            "samples": len(clean),
            "first_third_mean": None,
            "last_third_mean": None,
            "ratio": None,
            "increase_fraction": None,
            "drifting": False,
        }
    third = len(clean) // 3
    first = float(np.mean(clean[:third]))
    last = float(np.mean(clean[-third:]))
    deltas = np.diff(clean)
    increase_fraction = float(np.mean(deltas > 0)) if len(deltas) else 0.0
    ratio = last / first if first > 0 else (math.inf if last > 0 else 1.0)
    return {
        "samples": len(clean),
        "first_third_mean": first,
        "last_third_mean": last,
        "ratio": ratio,
        "increase_fraction": increase_fraction,
        "drifting": bool(
            last >= min_last_mean
            and ratio > _DRIFT_RATIO
            and increase_fraction >= _DRIFT_INCREASE_FRACTION
        ),
    }


# ----------------------------------------------------------------------
# the soak run
# ----------------------------------------------------------------------
async def _soak(config: SoakConfig) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Run the daemon + load + sampler; returns (samples, summary)."""
    server = ScheduleServer(
        ServerConfig(
            batch_window_s=config.batch_window_s,
            max_batch=config.max_batch,
            metrics_port=0,
            max_inflight=config.max_inflight,
        ),
        registry=demo_registry(),
    )
    await server.start()
    assert server.port is not None and server.metrics_port is not None
    port, metrics_port = server.port, server.metrics_port
    host = server.config.host
    n = max(1, int(round(config.rate_qps * config.duration_s)))
    bench_config = BenchConfig(
        open_loop_requests=n,
        rate_qps=config.rate_qps,
        seed=config.seed,
        batch_window_s=config.batch_window_s,
        max_batch=config.max_batch,
    )
    queries = build_queries(bench_config, n, phase=3)

    samples: list[dict[str, Any]] = []
    prom_parse_failures = 0
    epoch = time.perf_counter()
    latencies_so_far = 0
    shared_latencies: list[float] = []

    async def sample_once() -> None:
        nonlocal prom_parse_failures, latencies_so_far
        t_s = time.perf_counter() - epoch
        health = (await _protocol_request(host, port, {"op": "health"}))["health"]
        metrics_body = await _protocol_request(host, port, {"op": "metrics"})
        status, body = await _http_get(host, metrics_port, "/metrics")
        try:
            if status != 200:
                raise PrometheusParseError(f"HTTP {status} from /metrics")
            parse_prometheus_text(body)
        except PrometheusParseError:
            prom_parse_failures += 1
        rss_mb = await asyncio.to_thread(_read_rss_mb)
        seen = list(shared_latencies)
        new_count = len(seen) - latencies_so_far
        new_sum = sum(seen[latencies_so_far:])
        latencies_so_far = len(seen)
        samples.append(
            {
                "kind": "sample",
                "t_s": round(t_s, 3),
                "rss_mb": rss_mb,
                "queue_depth": health["queue_depth"],
                "inflight": health["inflight"],
                "requests": health["requests"],
                "errors": health["errors"],
                "rejected": health["rejected"],
                "interval_latency_ms_mean": (new_sum / new_count * 1e3)
                if new_count
                else None,
                "interval_completed": new_count,
                "tenant_solve_requests": _tenant_solve_counts(
                    metrics_body["metrics"]
                ),
            }
        )

    stop_sampling = asyncio.Event()

    async def sampler() -> None:
        while not stop_sampling.is_set():
            try:
                await asyncio.wait_for(
                    stop_sampling.wait(), timeout=config.sample_every_s
                )
            except TimeoutError:
                pass
            if stop_sampling.is_set():
                break
            await sample_once()

    sampler_task = asyncio.ensure_future(sampler())
    try:
        latencies, wall, errors = await run_open_loop(
            host,
            port,
            queries,
            config.rate_qps,
            config.seed,
            latencies=shared_latencies,
        )
    finally:
        stop_sampling.set()
        await sampler_task

    # the post-load sample is the conservation measurement: every
    # response has been received, so the counters are settled
    await sample_once()
    final_counts = samples[-1]["tenant_solve_requests"]
    per_tenant_total = sum(final_counts.values())
    rejected = int(samples[-1]["rejected"])
    await server.stop()

    drift = {
        "rss_mb": detect_drift([s["rss_mb"] for s in samples]),
        # a handful of queued queries is the batching window doing its
        # job; only a sustained double-digit backlog can be a leak
        "queue_depth": detect_drift(
            [float(s["queue_depth"]) for s in samples], min_last_mean=10.0
        ),
        "interval_latency_ms_mean": detect_drift(
            [s["interval_latency_ms_mean"] for s in samples]
        ),
    }
    lat = np.asarray(latencies, dtype=np.float64) * 1e3
    summary = {
        "kind": "summary",
        "sent": n,
        "completed": len(latencies),
        # busy rejections are deliberate shedding at the --max-inflight
        # cap, reported separately -- "errors" keeps meaning failures
        "errors": errors - rejected,
        "wall_s": wall,
        "qps_offered": config.rate_qps,
        "qps_achieved": len(latencies) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": float(np.mean(lat)) if len(lat) else None,
            "p50": float(np.percentile(lat, 50)) if len(lat) else None,
            "p99": float(np.percentile(lat, 99)) if len(lat) else None,
        },
        "samples": len(samples),
        "prom_parse_failures": prom_parse_failures,
        "rejected": rejected,
        "conservation": {
            # a request either reached a tenant solve or was rejected at
            # the backpressure cap -- nothing may vanish in between
            "sent": n,
            "rejected": rejected,
            "per_tenant_total": per_tenant_total,
            "per_tenant": final_counts,
            "exact": per_tenant_total + rejected == n,
        },
        "drift": drift,
    }
    return samples, summary


def run_soak(config: SoakConfig, out_path: str | None = None) -> dict[str, Any]:
    """Run the soak; optionally write the JSONL artifact.

    Returns the summary record.  The artifact is written *after* the
    run from in-memory records (one synchronous write; the event loop
    never does file I/O).
    """
    samples, summary = asyncio.run(_soak_with_fresh_cache(config))
    if out_path is not None:
        header = {
            "schema": SOAK_SCHEMA,
            "kind": "header",
            "config": config.as_dict(),
        }
        lines = [header, *samples, summary]
        with open(out_path, "w") as fh:
            for record in lines:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
    return summary


async def _soak_with_fresh_cache(
    config: SoakConfig,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    with use_solver_cache(SolverCache()):
        return await _soak(config)
