"""Wire-format codec for availability models.

The serving protocol describes a fitted availability distribution as a
JSON *model spec*::

    {"family": "weibull", "params": {"shape": 0.43, "scale": 3409.0}}

Every closed-form family the fitters produce is representable; the
``params`` keys are exactly the constructor keyword arguments (which by
construction match :meth:`~repro.distributions.base.\
AvailabilityDistribution.params`), so ``distribution_to_spec`` /
``distribution_from_spec`` round-trip losslessly.  The empirical
distribution is deliberately *not* servable: its parameter is a whole
data vector, which does not belong in a per-request wire format --
tenants ship the fitted parametric model instead.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.distributions.base import AvailabilityDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.hyperexponential import Hyperexponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.pareto import Pareto
from repro.distributions.weibull import Weibull

__all__ = ["FAMILIES", "distribution_from_spec", "distribution_to_spec"]

#: servable family name -> constructor
FAMILIES: dict[str, type[AvailabilityDistribution]] = {
    "exponential": Exponential,
    "weibull": Weibull,
    "hyperexponential": Hyperexponential,
    "lognormal": LogNormal,
    "pareto": Pareto,
}


def _coerce_param(name: str, value: Any) -> float | list[float]:
    """Validate one parameter value: a finite number or a list of them."""
    if isinstance(value, bool):
        raise ValueError(f"model parameter {name!r} must be numeric, got {value!r}")
    if isinstance(value, int | float):
        return float(value)
    if isinstance(value, list | tuple):
        out = []
        for i, v in enumerate(value):
            if isinstance(v, bool) or not isinstance(v, int | float):
                raise ValueError(
                    f"model parameter {name!r}[{i}] must be numeric, got {v!r}"
                )
            out.append(float(v))
        return out
    raise ValueError(
        f"model parameter {name!r} must be a number or list of numbers, got {value!r}"
    )


def distribution_from_spec(spec: Mapping[str, Any]) -> AvailabilityDistribution:
    """Build a distribution from a model spec, with precise error messages.

    Raises :class:`ValueError` for anything malformed: unknown family,
    missing/extra/non-numeric parameters, or parameter values the family
    constructor itself rejects.
    """
    if not isinstance(spec, Mapping):
        raise ValueError(f"model spec must be an object, got {type(spec).__name__}")
    family = spec.get("family")
    if not isinstance(family, str) or family not in FAMILIES:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(f"unknown model family {family!r} (known: {known})")
    params = spec.get("params")
    if not isinstance(params, Mapping):
        raise ValueError(f"model spec for {family!r} needs a 'params' object")
    kwargs = {str(k): _coerce_param(str(k), v) for k, v in params.items()}
    try:
        return FAMILIES[family](**kwargs)
    except TypeError as exc:
        # wrong/missing keyword arguments: report what the family expects
        raise ValueError(f"bad parameters for family {family!r}: {exc}") from exc
    except ValueError as exc:
        raise ValueError(f"bad parameters for family {family!r}: {exc}") from exc


def distribution_to_spec(distribution: AvailabilityDistribution) -> dict[str, Any]:
    """The JSON-ready model spec of a servable distribution.

    Raises :class:`ValueError` for families outside :data:`FAMILIES`
    (e.g. empirical or conditional wrappers).
    """
    if distribution.name not in FAMILIES:
        raise ValueError(
            f"distribution family {distribution.name!r} is not servable "
            f"(servable: {', '.join(sorted(FAMILIES))})"
        )
    params = {
        k: list(v) if isinstance(v, tuple) else float(v)
        for k, v in distribution.params().items()
    }
    return {"family": distribution.name, "params": params}
