"""Minimal HTTP scrape endpoint for the serving daemon.

``repro serve --metrics-port N`` starts this next to the JSON-lines
listener: a tiny HTTP/1.0-style responder on the same event loop, just
enough surface for a Prometheus scraper and a load-balancer probe --
not a web framework.  Two routes:

* ``GET /metrics``: the process metrics registry in Prometheus text
  exposition format (:func:`~repro.obs.prometheus.render_prometheus`);
* ``GET /health``: the daemon's readiness document as JSON (the same
  body as the ``health`` protocol op).

Anything else is a 404; non-GET methods are a 405.  Connections are
close-after-response, so each scrape is one short-lived task and a
stuck scraper cannot wedge the daemon.  The handlers take callables
(not the server object) so the module stays import-cycle-free; a
render callable may be synchronous (the single-process daemon reads
its own registry) or a coroutine function (the multi-worker supervisor
fans a scrape out to its workers' control ports and merges, so every
scrape sees live per-worker numbers).
"""

from __future__ import annotations

import asyncio
import inspect
import json
from collections.abc import Awaitable, Callable
from typing import Any, TypeVar, cast

from repro.obs.metrics import active as _metrics

__all__ = ["MetricsHttpEndpoint"]

_T = TypeVar("_T")


async def _resolve(value: "_T | Awaitable[_T]") -> "_T":
    """Await ``value`` when a render callable returned a coroutine."""
    if inspect.isawaitable(value):
        return cast("_T", await value)
    return cast("_T", value)

#: request line + headers must fit in this many bytes (a scrape's GET
#: line is tens of bytes; anything bigger is not a scraper)
_MAX_HEADER_BYTES = 8192


class MetricsHttpEndpoint:
    """The ``--metrics-port`` HTTP listener: ``/metrics`` + ``/health``."""

    def __init__(
        self,
        *,
        host: str,
        port: int,
        render_metrics: Callable[[], str | Awaitable[str]],
        render_health: Callable[[], dict[str, Any] | Awaitable[dict[str, Any]]],
    ) -> None:
        self.host = host
        self.config_port = port
        self.port: int | None = None
        self._render_metrics = render_metrics
        self._render_health = render_health
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("metrics endpoint already started")
        self._server = await asyncio.start_server(
            self._handle,
            host=self.host,
            port=self.config_port,
            limit=_MAX_HEADER_BYTES,
        )
        sockets = self._server.sockets
        if sockets:
            self.port = int(sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # ------------------------------------------------------------------
    async def _respond(self, path: str) -> tuple[int, str, str]:
        """Route one GET; returns (status, content-type, body)."""
        if path == "/metrics":
            body = await _resolve(self._render_metrics())
            return 200, "text/plain; version=0.0.4; charset=utf-8", body
        if path == "/health":
            health = await _resolve(self._render_health())
            status = 200 if health.get("status") == "ok" else 503
            return status, "application/json", json.dumps(health, sort_keys=True) + "\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, content_type, body = 400, "text/plain; charset=utf-8", "bad request\n"
        path = "*"
        try:
            header = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
            request_line = header.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split()
            if len(parts) == 3:
                method, target, _version = parts
                if method != "GET":
                    status, body = 405, "method not allowed\n"
                else:
                    path = target.split("?", 1)[0]
                    status, content_type, body = await self._respond(path)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            TimeoutError,
            ValueError,
        ):
            pass  # fall through to the 400 already staged
        reg = _metrics()
        if reg is not None:
            reg.inc(
                "serve.http.requests",
                labels={
                    # bound the path label to the known routes
                    "path": path if path in ("/metrics", "/health") else "*",
                    "status": status,
                },
            )
        encoded = body.encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 503: "Service Unavailable"}
        writer.write(
            (
                f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(encoded)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(encoded)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # scraper hung up mid-response; nothing to salvage
        finally:
            writer.close()
