"""The ``repro serve`` daemon: an asyncio schedule-query service.

A single-process, dependency-free asyncio server that turns the
checkpoint-interval optimizer into infrastructure: JSON-lines requests
over TCP (or stdio for tests and scripting), answered through the
micro-batcher so concurrent queries share solver work, with the
process-global solver cache persisted to disk so restarts begin hot.

Layering::

    transport (TCP connections / stdio loop)
        -> ScheduleServer.handle_request   (op dispatch, admin ops)
            -> MicroBatcher.submit         (solve path: batching window)
                -> optimize_intervals_batch (grouped, deduplicated)
                    -> SolverCache          (process-global, snapshotted)

Connections are *pipelined*: each request line spawns its own task and
responses are written as they complete (out of order; clients match on
``id``).  That is what gives the micro-batcher concurrent in-flight
queries to batch even over a single connection.

Metrics (``serve.*``, catalogued in ``docs/OBSERVABILITY.md``) and one
``serve``/``request`` trace span per request report what the daemon is
doing; ``docs/SERVING.md`` documents the protocol and lifecycle.  The
labeled per-tenant series (``serve.tenant.*`` with ``tenant``/``op``
labels), the request-lifecycle histograms (``serve.lifecycle.*``), the
``metrics``/``health`` introspection ops, and the ``--metrics-port``
Prometheus scrape endpoint make the running daemon observable without
restarting it; requests slower than ``slow_request_s`` additionally
emit one structured (JSON) log line on the ``repro.serve`` logger.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass
from typing import Any, TextIO

from repro.core.solver_cache import active_cache
from repro.obs.metrics import active as _metrics
from repro.obs.metrics import disable as _metrics_disable
from repro.obs.metrics import enable as _metrics_enable
from repro.obs.prometheus import render_prometheus
from repro.obs.tracing import active as _trace_active
from repro.serve.batcher import MicroBatcher, SolveQuery
from repro.serve.models import distribution_from_spec, distribution_to_spec
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_SCHEMA,
    ProtocolError,
    costs_from_payload,
    costs_to_payload,
    dumps,
    error_response,
    interval_to_payload,
    ok_response,
    parse_request,
)
from repro.serve.metrics_http import MetricsHttpEndpoint
from repro.serve.registry import TenantRegistry, UnknownPoolError
from repro.serve.snapshot import (
    SnapshotError,
    apply_snapshot_payload,
    load_cache_snapshot,
    read_snapshot_payload,
    record_snapshot_error,
    record_snapshot_saved,
    save_cache_snapshot,
    snapshot_payload,
    write_snapshot_payload,
)

__all__ = ["ScheduleServer", "ServerConfig"]

#: slow-request structured log lines land here (stdlib logging; the CLI
#: leaves configuration to the operator, so they are silent by default)
_logger = logging.getLogger("repro.serve")

#: response writes skip ``drain()`` until the transport buffer exceeds
#: this many bytes (a slow or stalled client); below it, a response is a
#: single synchronous buffer append
_DRAIN_WATERMARK = 1 << 16


def _request_envelope_of(line: str) -> tuple[Any, str | None]:
    """Best-effort ``(id, op)`` extraction for the backpressure fast
    path: a rejected request still gets its id echoed when the line
    parses (``None`` -- an id-less ``busy`` response -- when it does
    not), and the op decides whether the cap applies at all."""
    try:
        data = json.loads(line)
    except ValueError:
        return None, None
    if not isinstance(data, dict):
        return None, None
    op = data.get("op")
    return data.get("id"), op if isinstance(op, str) else None


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration of one :class:`ScheduleServer`.

    ``port=0`` binds an ephemeral port (the bound port is published as
    :attr:`ScheduleServer.port` once started -- used by tests and the
    in-process bench).  ``snapshot_interval_s`` only matters when
    ``snapshot_path`` is set.  ``metrics_port`` (``None`` = off, ``0``
    = ephemeral) adds the HTTP scrape endpoint; ``slow_request_s`` is
    the structured-log threshold for slow requests.

    Worker-pool fields (see :mod:`repro.serve.workers`):
    ``reuse_port`` binds the listener with ``SO_REUSEPORT`` so several
    worker processes share one TCP port; ``snapshot_source_path`` warm-
    loads from a different file than periodic snapshots write to (a
    worker boots from the pool's *merged* snapshot but persists its own
    per-worker file); ``worker_index`` stamps ``stats``/``health``
    responses so a client can tell which worker answered.
    ``max_inflight`` is the backpressure cap: a ``solve`` request
    arriving while the server already has that many requests in flight
    gets an immediate ``busy`` error response instead of unbounded
    queueing (``None`` = no cap; control-plane ops are never shed, so
    health probes keep answering under saturation).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_s: float = 0.002
    max_batch: int = 256
    snapshot_path: str | None = None
    snapshot_interval_s: float = 30.0
    t_min: float = 1e-3
    rel_tol: float = 1e-6
    metrics_port: int | None = None
    slow_request_s: float = 1.0
    max_inflight: int | None = None
    reuse_port: bool = False
    snapshot_source_path: str | None = None
    worker_index: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max in-flight cap must be >= 1, got {self.max_inflight}"
            )
        if self.worker_index is not None and self.worker_index < 0:
            raise ValueError(
                f"worker index must be >= 0, got {self.worker_index}"
            )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ValueError(
                f"metrics port must be in [0, 65535], got {self.metrics_port}"
            )
        if self.slow_request_s <= 0:
            raise ValueError(
                f"slow-request threshold must be positive, got {self.slow_request_s}"
            )
        if self.batch_window_s < 0:
            raise ValueError(f"batch window must be >= 0, got {self.batch_window_s}")
        if self.max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {self.max_batch}")
        if self.snapshot_interval_s <= 0:
            raise ValueError(
                f"snapshot interval must be positive, got {self.snapshot_interval_s}"
            )
        if self.t_min <= 0:
            raise ValueError(f"t_min must be positive, got {self.t_min}")
        if self.rel_tol <= 0:
            raise ValueError(f"rel_tol must be positive, got {self.rel_tol}")


class ScheduleServer:
    """The daemon: registry + batcher + snapshot lifecycle + transports."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        registry: TenantRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.registry = registry if registry is not None else TenantRegistry()
        self._epoch = time.perf_counter()
        self.batcher = MicroBatcher(
            window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
            clock=self._now,
        )
        self.port: int | None = None if self.config.port == 0 else self.config.port
        self.metrics_port: int | None = None
        self.requests = 0
        self.errors = 0
        self.rejected = 0
        self._inflight = 0
        self.warm_loaded_entries = 0
        self.op_counts: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._snapshot_task: asyncio.Task[None] | None = None
        self._snapshot_lock = asyncio.Lock()
        self._connections: dict[asyncio.Task[None], asyncio.StreamWriter] = {}
        self._metrics_endpoint: MetricsHttpEndpoint | None = None
        self._owns_metrics = False
        self._last_snapshot_wall: float | None = None

    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Wall-clock seconds since the server object was created (the
        trace timeline of the daemon)."""
        return time.perf_counter() - self._epoch

    def warm_load(self) -> int:
        """Load the configured snapshot into the active solver cache.

        Synchronous variant for scripts and tests; the running daemon
        uses :meth:`_warm_load_async` so the disk read happens off-loop.
        Returns the number of entries inserted; a missing or invalid
        snapshot file is a *cold start*, not an error (the daemon logs
        it via ``serve.snapshot.load_failures`` and serves anyway).
        """
        path = self._warm_source()
        if path is None:
            return 0
        try:
            self.warm_loaded_entries = load_cache_snapshot(path)
        except SnapshotError:
            reg = _metrics()
            if reg is not None:
                reg.inc("serve.snapshot.load_failures")
            self.warm_loaded_entries = 0
        return self.warm_loaded_entries

    def _warm_source(self) -> str | None:
        """The file warm loads read: the explicit source path when set
        (worker mode: boot from the pool's merged snapshot), else the
        snapshot path itself."""
        return self.config.snapshot_source_path or self.config.snapshot_path

    async def _warm_load_async(self) -> int:
        """:meth:`warm_load` with the blocking read off the event loop."""
        path = self._warm_source()
        if path is None:
            return 0
        try:
            payload = await asyncio.to_thread(read_snapshot_payload, path)
            self.warm_loaded_entries = apply_snapshot_payload(
                payload, source=f"snapshot {path!r}"
            )
        except SnapshotError:
            reg = _metrics()
            if reg is not None:
                reg.inc("serve.snapshot.load_failures")
            self.warm_loaded_entries = 0
        return self.warm_loaded_entries

    def snapshot_now(self, path: str | None = None) -> int:
        """Write a snapshot to ``path`` (default: the configured path).

        Synchronous variant for scripts and tests; the running daemon
        uses :meth:`_snapshot_async` so the disk write happens off-loop.
        """
        target = self._snapshot_target(path)
        entries = save_cache_snapshot(target)
        self._last_snapshot_wall = time.perf_counter()
        return entries

    def _snapshot_target(self, path: str | None) -> str:
        target = path if path is not None else self.config.snapshot_path
        if target is None:
            raise SnapshotError(
                "no snapshot path configured (start with --snapshot or pass 'path')"
            )
        return target

    async def _snapshot_async(self, path: str | None = None) -> int:
        """Write a snapshot without stalling the event loop.

        The cache view is captured *on* the loop (a consistent snapshot,
        since all mutation happens there too) and the file write runs in
        a worker thread.  The lock serialises concurrent snapshot
        requests so two writers never race on the same temp file.
        """
        target = self._snapshot_target(path)
        async with self._snapshot_lock:
            payload = snapshot_payload()
            try:
                entries = await asyncio.to_thread(
                    write_snapshot_payload, target, payload
                )
            except SnapshotError:
                record_snapshot_error()
                raise
        self._last_snapshot_wall = time.perf_counter()
        record_snapshot_saved(entries)
        return entries

    # ------------------------------------------------------------------
    # request handling (transport-independent)
    # ------------------------------------------------------------------
    async def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Answer one parsed request object."""
        request_id = request.get("id")
        reg = _metrics()
        trace = _trace_active()
        started = self._now()
        self.requests += 1
        if reg is not None:
            reg.inc("serve.requests")
        op = str(request.get("op"))
        op_key = op if op in _OP_COUNTERS else "invalid"
        self.op_counts[op_key] = self.op_counts.get(op_key, 0) + 1
        pool = request.get("pool")
        tenant = pool if isinstance(pool, str) and pool else "-"
        try:
            response = await self._dispatch(op, request, request_id)
        except ProtocolError as exc:
            response = error_response(request_id, exc.code, exc.message)
        except UnknownPoolError as exc:
            response = error_response(request_id, "unknown-pool", str(exc))
        except (ValueError, OverflowError, ArithmeticError) as exc:
            # solver/domain failures: the query was structurally fine but
            # unanswerable (e.g. age beyond the distribution's support)
            response = error_response(request_id, "solver-error", str(exc))
        ok = bool(response.get("ok", False))
        if not ok:
            self.errors += 1
            if reg is not None:
                reg.inc("serve.errors")
        elapsed = self._now() - started
        if reg is not None:
            reg.observe("serve.request_seconds", elapsed)
            reg.inc(f"serve.op.{op}" if op in _OP_COUNTERS else "serve.op.invalid")
            labels = {"tenant": tenant, "op": op_key}
            reg.inc("serve.tenant.requests", labels=labels)
            if not ok:
                reg.inc("serve.tenant.errors", labels=labels)
            reg.observe("serve.tenant.request_seconds", elapsed, labels=labels)
        if elapsed > self.config.slow_request_s:
            if reg is not None:
                reg.inc("serve.requests.slow")
            _logger.warning(
                "%s",
                json.dumps(
                    {
                        "event": "slow_request",
                        "op": op_key,
                        "tenant": tenant,
                        "elapsed_s": round(elapsed, 6),
                        "threshold_s": self.config.slow_request_s,
                        "ok": ok,
                    },
                    sort_keys=True,
                ),
            )
        if trace is not None:
            trace.span(
                "serve",
                "request",
                started,
                elapsed,
                args={"op": op, "ok": ok},
            )
        return response

    async def handle_line(self, line: str) -> dict[str, Any]:
        """Parse one request line and answer it (stdio / test helper)."""
        reg = _metrics()
        parse0 = time.perf_counter()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.requests += 1
            self.errors += 1
            self.op_counts["invalid"] = self.op_counts.get("invalid", 0) + 1
            if reg is not None:
                reg.observe(
                    "serve.lifecycle.parse_seconds", time.perf_counter() - parse0
                )
                reg.inc("serve.requests")
                reg.inc("serve.errors")
            return error_response(None, exc.code, exc.message)
        if reg is not None:
            reg.observe("serve.lifecycle.parse_seconds", time.perf_counter() - parse0)
        return await self.handle_request(request)

    async def _dispatch(
        self, op: str, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        if op == "ping":
            return ok_response(request_id, pong=True, schema=PROTOCOL_SCHEMA)
        if op == "solve":
            return await self._op_solve(request, request_id)
        if op == "register":
            return self._op_register(request, request_id)
        if op == "unregister":
            pool = self._pool_name(request)
            self.registry.unregister(pool)
            return ok_response(request_id, pool=pool, unregistered=True)
        if op == "pools":
            return ok_response(
                request_id,
                pools=[
                    {
                        "pool": entry.name,
                        "model": distribution_to_spec(entry.distribution),
                        "costs": costs_to_payload(entry.costs),
                    }
                    for entry in self.registry.entries()
                ],
            )
        if op == "stats":
            return ok_response(request_id, stats=self.stats())
        if op == "metrics":
            reg = _metrics()
            return ok_response(
                request_id,
                enabled=reg is not None,
                metrics=reg.as_dict()
                if reg is not None
                else {"counters": {}, "gauges": {}, "histograms": {}},
            )
        if op == "health":
            return ok_response(request_id, health=self.health())
        if op == "snapshot":
            path = request.get("path")
            if path is not None and not isinstance(path, str):
                raise ProtocolError("bad-request", "'path' must be a string")
            try:
                entries = await self._snapshot_async(path)
            except SnapshotError as exc:
                return error_response(request_id, "snapshot-failed", str(exc))
            target = path if path is not None else self.config.snapshot_path
            return ok_response(request_id, entries=entries, path=target)
        if op == "shutdown":
            if self._stop is not None:
                self._stop.set()
            return ok_response(request_id, stopping=True)
        raise ProtocolError("unknown-op", f"unknown op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_name(request: dict[str, Any]) -> str:
        pool = request.get("pool")
        if not isinstance(pool, str) or not pool:
            raise ProtocolError("bad-request", "'pool' must be a non-empty string")
        return pool

    async def _op_solve(self, request: dict[str, Any], request_id: Any) -> dict[str, Any]:
        age = request.get("age")
        if isinstance(age, bool) or not isinstance(age, int | float):
            raise ProtocolError("bad-request", f"'age' must be numeric, got {age!r}")
        if age < 0:
            raise ProtocolError("bad-request", f"'age' must be non-negative, got {age}")
        pool = request.get("pool")
        model = request.get("model")
        if pool is not None and model is not None:
            raise ProtocolError(
                "bad-request", "give either 'pool' or an inline 'model', not both"
            )
        if pool is not None:
            entry = self.registry.get(self._pool_name(request))
            distribution = entry.distribution
            costs = costs_from_payload(request.get("costs"), entry.costs)
            tenant = entry.name
        elif model is not None:
            try:
                distribution = distribution_from_spec(model)
            except ValueError as exc:
                raise ProtocolError("bad-model", str(exc)) from exc
            costs = costs_from_payload(request.get("costs"))
            tenant = "-"
        else:
            raise ProtocolError(
                "bad-request", "a solve needs a 'pool' name or an inline 'model'"
            )
        query = SolveQuery(
            distribution=distribution,
            costs=costs,
            age=float(age),
            t_min=self.config.t_min,
            rel_tol=self.config.rel_tol,
            tenant=tenant,
        )
        result = await self.batcher.submit(query)
        return ok_response(request_id, result=interval_to_payload(result))

    def _op_register(self, request: dict[str, Any], request_id: Any) -> dict[str, Any]:
        pool = self._pool_name(request)
        model = request.get("model")
        if model is None:
            raise ProtocolError("bad-request", "register needs a 'model' spec")
        try:
            distribution = distribution_from_spec(model)
        except ValueError as exc:
            raise ProtocolError("bad-model", str(exc)) from exc
        costs = costs_from_payload(request.get("costs"))
        replaced = self.registry.register(pool, distribution, costs)
        return ok_response(request_id, pool=pool, replaced=replaced)

    def stats(self) -> dict[str, Any]:
        """The daemon's cumulative accounting (the ``stats`` op body)."""
        cache = active_cache()
        cache_stats: dict[str, Any] = {"enabled": cache is not None}
        if cache is not None:
            lookups = cache.hits + cache.misses
            cache_stats.update(
                entries=len(cache),
                capacity=cache.capacity,
                hits=cache.hits,
                misses=cache.misses,
                evictions=cache.evictions,
                hit_rate=cache.hits / lookups if lookups else None,
            )
        batch = self.batcher.stats
        return {
            "schema": PROTOCOL_SCHEMA,
            "uptime_s": self._now(),
            "worker": self.config.worker_index,
            "port": self.port,
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "ops": dict(sorted(self.op_counts.items())),
            "pools": len(self.registry),
            "batch": batch.as_dict(),
            "solves_per_request": batch.solves / batch.queries if batch.queries else None,
            "cache": cache_stats,
            "warm_loaded_entries": self.warm_loaded_entries,
        }

    def health(self) -> dict[str, Any]:
        """The daemon's readiness document (``health`` op and ``GET
        /health`` body): liveness plus the signals an operator checks
        first -- warm-load state, snapshot age, queue depth."""
        snapshot_age = (
            None
            if self._last_snapshot_wall is None
            else time.perf_counter() - self._last_snapshot_wall
        )
        return {
            "status": "ok",
            "schema": PROTOCOL_SCHEMA,
            "uptime_s": self._now(),
            # the *actually bound* ports: with port 0 (or metrics-port 0)
            # these are the ephemeral assignments, so worker mode can
            # publish what the kernel picked rather than what was asked
            "worker": self.config.worker_index,
            "port": self.port,
            "metrics_port": self.metrics_port,
            "queue_depth": self.batcher.pending,
            "inflight": self._inflight,
            "pools": len(self.registry),
            "warm_loaded_entries": self.warm_loaded_entries,
            "snapshot_configured": self.config.snapshot_path is not None,
            "snapshot_age_s": snapshot_age,
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "metrics_enabled": _metrics() is not None,
        }

    def _render_prometheus(self) -> str:
        """``GET /metrics`` body (empty exposition when disabled)."""
        reg = _metrics()
        return render_prometheus(reg) if reg is not None else ""

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One TCP client: pipelined JSON-lines until EOF."""
        # track the connection so stop() can close the transport under a
        # handler still parked in readline (it then sees EOF and exits;
        # cancelling instead is noisy on 3.11, bpo streams callback)
        current = asyncio.current_task()
        if current is not None:
            self._connections[current] = writer
        reg = _metrics()
        if reg is not None:
            reg.inc("serve.connections.opened")
        drain_lock = asyncio.Lock()
        tasks: set[asyncio.Task[None]] = set()

        async def respond(line: str) -> None:
            response = await self.handle_line(line)
            payload = (dumps(response) + "\n").encode()
            respond0 = time.perf_counter()
            # each response is one complete line in one write() call, so
            # concurrent responders cannot interleave framing; drain only
            # once the transport buffer backs up (a slow client), which
            # keeps the hot path to a single buffer append
            writer.write(payload)
            transport = writer.transport
            if (
                transport is not None
                and transport.get_write_buffer_size() > _DRAIN_WATERMARK
            ):
                async with drain_lock:
                    await writer.drain()
            if reg is not None:
                reg.observe(
                    "serve.lifecycle.respond_seconds",
                    time.perf_counter() - respond0,
                )

        def finish(task: asyncio.Task[None]) -> None:
            tasks.discard(task)
            self._inflight -= 1

        cap = self.config.max_inflight
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit (MAX_LINE_BYTES);
                    # the framing is lost, so drop the connection
                    break
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                if cap is not None and self._inflight >= cap:
                    # overload: shed the request with a cheap immediate
                    # error instead of queueing without bound (the id is
                    # echoed when the line parses, so pipelined clients
                    # can still match the rejection).  Only ``solve``
                    # requests are shed -- they are what queues in the
                    # batcher; control-plane ops (health, metrics,
                    # stats, shutdown, ...) are answered inline and must
                    # keep working exactly when the server is saturated.
                    rid, op = _request_envelope_of(line)
                    if op == "solve":
                        self.rejected += 1
                        if reg is not None:
                            reg.inc("serve.requests.rejected")
                        busy = error_response(
                            rid,
                            "busy",
                            f"server at max in-flight requests ({cap})",
                        )
                        writer.write((dumps(busy) + "\n").encode())
                        continue
                self._inflight += 1
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(finish)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            if current is not None:
                self._connections.pop(current, None)
            if reg is not None:
                reg.inc("serve.connections.closed")
            try:
                writer.close()
                await writer.wait_closed()
            except OSError:
                pass  # the client is already gone; nothing left to flush

    async def start(self) -> None:
        """Bind the TCP listener, warm-load the snapshot, start the
        periodic snapshot task.  Returns once the server is accepting."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop = asyncio.Event()
        if self.config.metrics_port is not None and _metrics() is None:
            # a scrape endpoint without a registry would expose nothing;
            # enable one for the daemon's lifetime (released in stop())
            _metrics_enable()
            self._owns_metrics = True
        await self._warm_load_async()
        self._server = await asyncio.start_server(
            self.handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES + 1024,
            reuse_port=self.config.reuse_port or None,
        )
        sockets = self._server.sockets
        if sockets:
            self.port = int(sockets[0].getsockname()[1])
        if self.config.metrics_port is not None:
            self._metrics_endpoint = MetricsHttpEndpoint(
                host=self.config.host,
                port=self.config.metrics_port,
                render_metrics=self._render_prometheus,
                render_health=self.health,
            )
            await self._metrics_endpoint.start()
            self.metrics_port = self._metrics_endpoint.port
        if self.config.snapshot_path is not None:
            self._snapshot_task = asyncio.ensure_future(self._snapshot_loop())

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.snapshot_interval_s)
            try:
                await self._snapshot_async()
            except SnapshotError:
                # already counted via serve.snapshot.errors; a full disk
                # must not kill the serving loop
                continue

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._stop is None:
            raise RuntimeError("server not started")
        await self._stop.wait()

    def request_stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    async def stop(self) -> None:
        """Stop accepting, drain the batcher, final snapshot, close."""
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            self._snapshot_task = None
        self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            # connections still parked in readline: close their
            # transports (the handlers see EOF and exit) and reap them
            for conn_writer in self._connections.values():
                conn_writer.close()
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        if self.config.snapshot_path is not None:
            try:
                await self._snapshot_async()
            except SnapshotError:
                pass  # counted in serve.snapshot.errors; shutdown proceeds
        if self._metrics_endpoint is not None:
            await self._metrics_endpoint.stop()
            self._metrics_endpoint = None
            self.metrics_port = None
        if self._owns_metrics:
            _metrics_disable()
            self._owns_metrics = False
        if self._stop is not None:
            self._stop.set()

    async def serve_forever(self) -> None:
        """The daemon main: start, serve until shutdown, clean up."""
        await self.start()
        try:
            await self.wait_stopped()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    async def run_stdio(self, lines: "Any", out: TextIO) -> int:
        """Serve requests from an iterable of text lines (tests, CLI
        ``--stdio``): strictly sequential, one response line per request.

        Returns the number of requests served.  A ``shutdown`` op ends
        the loop early.
        """
        self._stop = asyncio.Event()
        await self._warm_load_async()
        served = 0
        for line in lines:
            text = line.strip()
            if not text:
                continue
            response = await self.handle_line(text)
            print(dumps(response), file=out, flush=True)
            served += 1
            if self._stop.is_set():
                break
        self.batcher.drain()
        if self.config.snapshot_path is not None:
            try:
                await self._snapshot_async()
            except SnapshotError:
                pass  # counted in serve.snapshot.errors
        return served


#: ops that get a per-op counter (anything else counts as invalid)
_OP_COUNTERS = frozenset(
    (
        "ping",
        "solve",
        "register",
        "unregister",
        "pools",
        "stats",
        "metrics",
        "health",
        "snapshot",
        "shutdown",
    )
)
