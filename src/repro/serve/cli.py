"""Command-line front ends: ``repro serve`` and ``repro bench-serve``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, TextIO

from repro.serve.bench import (
    BenchConfig,
    demo_registry,
    distribution_specs,
    run_against,
    run_bench,
)
from repro.serve.models import distribution_from_spec
from repro.serve.protocol import costs_from_payload
from repro.serve.registry import TenantRegistry
from repro.serve.server import ScheduleServer, ServerConfig

__all__ = ["bench_main", "serve_main"]


def _read_pool_specs(path: str) -> list[dict[str, Any]]:
    """Validate a pools file -- a JSON list of ``{"pool":..., "model":
    {...}, "costs": {...}}`` objects -- and return the raw specs (the
    worker pool ships them to every worker process)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise SystemExit(f"error: {path}: pools file must hold a JSON array")
    for i, item in enumerate(data):
        if not isinstance(item, dict) or not isinstance(item.get("pool"), str):
            raise SystemExit(f"error: {path}: entry {i} needs a 'pool' name")
        try:
            distribution_from_spec(item.get("model") or {})
            costs_from_payload(item.get("costs"))
        except ValueError as exc:
            raise SystemExit(f"error: {path}: entry {i}: {exc}") from exc
    return [dict(item) for item in data]


def _load_pools_file(path: str, registry: TenantRegistry) -> int:
    """Register pools from a JSON file (single-process mode)."""
    specs = _read_pool_specs(path)
    for item in specs:
        registry.register(
            item["pool"],
            distribution_from_spec(item.get("model") or {}),
            costs_from_payload(item.get("costs")),
        )
    return len(specs)


def serve_main(argv: list[str], stdout: TextIO | None = None) -> int:
    """``repro serve [--port N] [--stdio] [--snapshot PATH] ...``"""
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint serve",
        description=(
            "Run the async schedule-query daemon: JSON-lines requests over "
            "TCP (or stdio), micro-batched solving, solver-cache snapshots "
            "for warm restarts.  Protocol reference: docs/SERVING.md."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    parser.add_argument("--port", type=int, default=7355, help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve requests from stdin to stdout instead of TCP (tests, scripting)",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batching window in milliseconds (default 2.0)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=256, help="flush once this many queries pend"
    )
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        default=None,
        help="solver-cache snapshot file: warm-loaded at startup, rewritten periodically and at shutdown",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds between periodic snapshots (default 30)",
    )
    parser.add_argument(
        "--pools",
        metavar="FILE",
        default=None,
        help="preload tenant pools from a JSON file (list of {pool, model, costs})",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="preload the paper's demo pools (campus-exp/-weibull/-hyper2)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve Prometheus text exposition on http://HOST:N/metrics "
            "(plus /health); 0 = ephemeral port, omit = off"
        ),
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=1000.0,
        metavar="MS",
        help="log a structured slow-request line over this threshold (default 1000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker-pool mode (N >= 2): N processes share the port via "
            "SO_REUSEPORT under a supervisor that merges snapshots and "
            "aggregates telemetry (docs/SERVING.md)"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "backpressure cap: reject requests with a 'busy' error once "
            "this many are in flight per worker (default: uncapped)"
        ),
    )
    parser.add_argument(
        "--merge-interval",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds between snapshot merges in worker-pool mode (default 30)",
    )
    args = parser.parse_args(argv)
    sink = stdout if stdout is not None else sys.stdout

    if args.batch_window_ms < 0:
        raise SystemExit("error: --batch-window-ms must be >= 0")
    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            batch_window_s=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            snapshot_path=args.snapshot,
            snapshot_interval_s=args.snapshot_interval,
            metrics_port=args.metrics_port,
            slow_request_s=args.slow_request_ms / 1e3,
            max_inflight=args.max_inflight,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc

    import asyncio

    if args.workers > 1:
        if args.stdio:
            raise SystemExit("error: --stdio is incompatible with --workers")
        return _serve_pool(args, config, sink)

    registry = demo_registry() if args.demo else TenantRegistry()
    if args.pools:
        _load_pools_file(args.pools, registry)
    server = ScheduleServer(config, registry=registry)

    if args.stdio:
        asyncio.run(server.run_stdio(sys.stdin, sink if stdout is not None else sys.stdout))
        return 0

    async def _run() -> None:
        await server.start()
        scrape = (
            f", metrics on http://{config.host}:{server.metrics_port}/metrics"
            if server.metrics_port is not None
            else ""
        )
        print(
            f"[repro serve] listening on {config.host}:{server.port} "
            f"(pools: {len(registry)}, warm-loaded: {server.warm_loaded_entries} "
            f"entries{scrape})",
            file=sink,
            flush=True,
        )
        try:
            await server.wait_stopped()
        finally:
            await server.stop()
            print("[repro serve] stopped", file=sink, flush=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass  # clean Ctrl-C: the finally block above already stopped the server
    return 0


def _serve_pool(
    args: argparse.Namespace, config: ServerConfig, sink: TextIO
) -> int:
    """``repro serve --workers N``: run the SO_REUSEPORT worker pool."""
    import asyncio

    from repro.serve.workers import WorkerPool, WorkerPoolConfig

    pool_specs: list[dict[str, Any]] = []
    if args.demo:
        pool_specs.extend(distribution_specs())
    if args.pools:
        pool_specs.extend(_read_pool_specs(args.pools))
    try:
        pool_config = WorkerPoolConfig(
            workers=args.workers,
            server=config,
            merge_interval_s=args.merge_interval,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    pool = WorkerPool(pool_config, pool_specs)

    async def _run() -> None:
        await pool.start()
        scrape = (
            f", metrics on http://{config.host}:{pool.metrics_port}/metrics"
            if pool.metrics_port is not None
            else ""
        )
        print(
            f"[repro serve] {args.workers} workers listening on "
            f"{config.host}:{pool.port} (pools: {len(pool_specs)}{scrape})",
            file=sink,
            flush=True,
        )
        try:
            await pool.wait_stopped()
        finally:
            await pool.stop()
            print("[repro serve] stopped", file=sink, flush=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass  # clean Ctrl-C: the finally block above already stopped the pool
    return 0


def bench_main(argv: list[str], stdout: TextIO | None = None) -> int:
    """``repro bench-serve [--out BENCH_serve.json] [--connect HOST:PORT]``"""
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint bench-serve",
        description=(
            "Load-generate against the schedule-query daemon: closed- and "
            "open-loop arrivals, QPS and p50/p95/p99 latency, batching "
            "effectiveness, and the cold-vs-warm restart comparison.  "
            "Writes the BENCH_serve.json artifact gated by "
            "benchmarks/check_serve_regression.py."
        ),
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON artifact here"
    )
    parser.add_argument(
        "--requests", type=int, default=2000, help="closed-loop request count"
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="closed-loop concurrent connections"
    )
    parser.add_argument(
        "--rate", type=float, default=1500.0, help="open-loop offered QPS"
    )
    parser.add_argument(
        "--open-requests", type=int, default=1500, help="open-loop request count"
    )
    parser.add_argument("--seed", type=int, default=2005, help="query-stream seed")
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, help="server batching window (ms)"
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="open-loop load against an already-running daemon instead of the in-process bench",
    )
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="with --connect: send a shutdown op after the run (CI smoke)",
    )
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        default=None,
        help="snapshot file used by the warm-restart phase (default: <out>.snapshot or a temp file)",
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help=(
            "soak mode: run an in-process daemon under continuous open-loop "
            "load, sampling its metrics/health endpoints into a "
            "repro.bench.soak/1 JSONL time series (--out)"
        ),
    )
    parser.add_argument(
        "--soak-seconds",
        type=float,
        default=30.0,
        metavar="S",
        help="soak duration in seconds (default 30)",
    )
    parser.add_argument(
        "--sample-every",
        type=float,
        default=2.0,
        metavar="S",
        help="soak sampling interval in seconds (default 2)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --soak: backpressure cap for the in-process daemon "
            "(rejections are accounted in the conservation check; "
            "default: uncapped)"
        ),
    )
    parser.add_argument(
        "--no-workers-sweep",
        action="store_true",
        help=(
            "skip the multi-worker scaling sweep (1/2/4-worker "
            "SO_REUSEPORT pools; on by default for the full artifact)"
        ),
    )
    args = parser.parse_args(argv)
    sink = stdout if stdout is not None else sys.stdout

    if args.batch_window_ms < 0:
        raise SystemExit("error: --batch-window-ms must be >= 0")
    if args.soak:
        if args.connect:
            raise SystemExit("error: --soak runs its own daemon; drop --connect")
        from repro.serve.soak import SoakConfig, run_soak

        try:
            soak_config = SoakConfig(
                duration_s=args.soak_seconds,
                sample_every_s=args.sample_every,
                rate_qps=args.rate,
                seed=args.seed,
                batch_window_s=args.batch_window_ms / 1e3,
                max_inflight=args.max_inflight,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        summary = run_soak(soak_config, args.out)
        conservation = summary["conservation"]
        drifting = [k for k, v in summary["drift"].items() if v["drifting"]]
        print(
            f"soak: {summary['sent']} sent over {summary['wall_s']:.1f}s "
            f"({summary['qps_achieved']:.0f}/{summary['qps_offered']:.0f} QPS), "
            f"{summary['errors']} errors, {summary['samples']} samples, "
            f"conservation {'exact' if conservation['exact'] else 'VIOLATED'}, "
            f"drift: {', '.join(drifting) if drifting else 'none'}",
            file=sink,
        )
        if args.out:
            print(f"[soak artifact written to {args.out}]", file=sink)
        if summary["errors"] or not conservation["exact"]:
            print("error: soak run failed its invariants", file=sys.stderr)
            return 1
        return 0
    try:
        config = BenchConfig(
            requests=args.requests,
            clients=args.clients,
            rate_qps=args.rate,
            open_loop_requests=args.open_requests,
            seed=args.seed,
            batch_window_s=args.batch_window_ms / 1e3,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc

    if args.connect:
        host, sep, port_text = args.connect.rpartition(":")
        if not sep or not port_text.isdigit():
            raise SystemExit("error: --connect expects HOST:PORT")
        summary = run_against(
            host or "127.0.0.1", int(port_text), config, shutdown=args.shutdown
        )
        _print_summary("open loop (external daemon)", summary, sink)
        if summary["errors"]:
            print(f"error: {summary['errors']} request(s) failed", file=sys.stderr)
            return 1
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
        return 0

    snapshot_path = args.snapshot
    if snapshot_path is None:
        import tempfile

        snapshot_path = (
            f"{args.out}.snapshot"
            if args.out
            else tempfile.NamedTemporaryFile(suffix=".snapshot.json", delete=False).name
        )
    artifact = run_bench(config, snapshot_path, workers_sweep=not args.no_workers_sweep)
    _print_artifact(artifact, sink)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"[artifact written to {args.out}]", file=sink)
    return 0


def _print_summary(title: str, summary: dict[str, Any], sink: TextIO) -> None:
    lat = summary["latency_ms"]
    qps = summary.get("qps", summary.get("qps_achieved", 0.0))
    print(
        f"{title}: {summary['requests']} requests, {qps:.0f} QPS | "
        f"latency ms p50 {lat['p50']:.2f}  p95 {lat['p95']:.2f}  p99 {lat['p99']:.2f}",
        file=sink,
    )


def _print_artifact(artifact: dict[str, Any], sink: TextIO) -> None:
    _print_summary("closed loop (cold)", artifact["closed_loop"], sink)
    _print_summary("closed loop (warm)", artifact["warm_start"]["closed_loop"], sink)
    _print_summary("open loop", artifact["open_loop"], sink)
    batching = artifact["batching"]
    print(
        f"batching: {batching['batches']} batches, mean size "
        f"{batching['mean_batch_size']:.1f}, {batching['solves_per_request']:.3f} "
        f"solves/request ({batching['collapsed']} queries collapsed)",
        file=sink,
    )
    print(
        f"cache: cold initial hit rate {artifact['cold_start']['initial_hit_rate']:.3f} "
        f"-> warm {artifact['warm_start']['initial_hit_rate']:.3f} "
        f"({artifact['warm_start']['snapshot_entries_loaded']} entries warm-loaded)",
        file=sink,
    )
    print(
        f"equivalence: max |T_opt dev| {artifact['equivalence_max_rel_dev']:.3e} relative",
        file=sink,
    )
    sweep = artifact.get("workers_sweep")
    if sweep:
        for point in sweep["points"]:
            print(
                f"workers {point['workers']}: {point['qps']:.0f} QPS "
                f"({point['clients']} clients) | latency ms "
                f"p50 {point['latency_ms']['p50']:.2f}  "
                f"p99 {point['latency_ms']['p99']:.2f}",
                file=sink,
            )
        warm = sweep["warm_restart"]
        print(
            f"workers scaling: {sweep['scaling_4w_over_1w']:.2f}x QPS at "
            f"{max(sweep['worker_counts'])} workers vs 1 | merged-boot warm "
            f"hit rate {warm['initial_hit_rate']:.3f} "
            f"({warm['snapshot_entries_loaded']} entries warm-loaded)",
            file=sink,
        )
