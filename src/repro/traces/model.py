"""Availability-trace containers.

The Condor occupancy monitor of Section 4 records, per machine, a
sequence of availability durations with UTC timestamps.  The paper's
simulation protocol splits each machine's sequence chronologically: the
first 25 observations form the *training set* (used to fit the four
candidate models), the remainder the *experimental set* (replayed by the
trace simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

import numpy as np

__all__ = ["AvailabilityTrace", "MachinePool", "TRAINING_SET_SIZE"]

#: the paper's training prefix length
TRAINING_SET_SIZE = 25


@dataclass(frozen=True)
class AvailabilityTrace:
    """One machine's chronological availability record.

    Attributes
    ----------
    machine_id:
        Stable identifier (the paper keys on Condor hostnames).
    durations:
        Availability durations in seconds, chronological order.
    timestamps:
        UTC start time (seconds) of each availability interval; optional
        but always produced by the synthetic generators and the DES
        occupancy monitor.
    censored:
        Optional boolean mask; ``True`` marks a *right-censored*
        observation -- the machine was still available when measurement
        stopped (e.g. the campaign horizon cut a long run short, the
        effect Section 5.3 identifies).  Censored durations are lower
        bounds; the fitting layer treats them as survival contributions.
    meta:
        Free-form provenance (ground-truth family and parameters for
        synthetic traces, pool name, ...).
    """

    machine_id: str
    durations: np.ndarray
    timestamps: np.ndarray | None = None
    censored: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        durations = np.asarray(self.durations, dtype=np.float64).ravel()
        if durations.size == 0:
            raise ValueError(f"trace {self.machine_id!r} has no observations")
        if np.any(durations < 0) or not np.all(np.isfinite(durations)):
            raise ValueError(f"trace {self.machine_id!r} has invalid durations")
        durations.setflags(write=False)
        object.__setattr__(self, "durations", durations)
        if self.censored is not None:
            cens = np.asarray(self.censored, dtype=bool).ravel()
            if cens.shape != durations.shape:
                raise ValueError(
                    f"trace {self.machine_id!r}: censored mask shape {cens.shape} "
                    f"!= durations shape {durations.shape}"
                )
            cens.setflags(write=False)
            object.__setattr__(self, "censored", cens)
        if self.timestamps is not None:
            ts = np.asarray(self.timestamps, dtype=np.float64).ravel()
            if ts.shape != durations.shape:
                raise ValueError(
                    f"trace {self.machine_id!r}: timestamps shape {ts.shape} "
                    f"!= durations shape {durations.shape}"
                )
            if np.any(np.diff(ts) < 0):
                raise ValueError(f"trace {self.machine_id!r}: timestamps not sorted")
            ts.setflags(write=False)
            object.__setattr__(self, "timestamps", ts)

    def __len__(self) -> int:
        return int(self.durations.size)

    def split(self, n_train: int = TRAINING_SET_SIZE) -> tuple[np.ndarray, np.ndarray]:
        """Chronological (training, experimental) split.

        Raises if the trace is too short to leave a non-empty
        experimental set, mirroring the paper's restriction to machines
        "which the Condor scheduler chose ... a sufficient number of
        times".
        """
        if n_train <= 0:
            raise ValueError(f"n_train must be positive, got {n_train}")
        if len(self) <= n_train:
            raise ValueError(
                f"trace {self.machine_id!r} has only {len(self)} observations; "
                f"need > {n_train} for a train/test split"
            )
        return self.durations[:n_train], self.durations[n_train:]

    @property
    def total_availability(self) -> float:
        """Total available seconds recorded for this machine."""
        return float(self.durations.sum())

    def head(self, n: int) -> "AvailabilityTrace":
        """A trace containing only the first ``n`` observations."""
        return AvailabilityTrace(
            machine_id=self.machine_id,
            durations=self.durations[:n],
            timestamps=None if self.timestamps is None else self.timestamps[:n],
            meta=dict(self.meta),
        )


@dataclass(frozen=True)
class MachinePool:
    """A collection of machine traces (the paper's ~640-machine pool)."""

    traces: tuple[AvailabilityTrace, ...]
    name: str = "pool"

    def __post_init__(self) -> None:
        traces = tuple(self.traces)
        ids = [t.machine_id for t in traces]
        if len(set(ids)) != len(ids):
            raise ValueError(f"pool {self.name!r} has duplicate machine ids")
        object.__setattr__(self, "traces", traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[AvailabilityTrace]:
        return iter(self.traces)

    def __getitem__(self, key: int | str) -> AvailabilityTrace:
        if isinstance(key, int):
            return self.traces[key]
        for trace in self.traces:
            if trace.machine_id == key:
                return trace
        raise KeyError(f"no machine {key!r} in pool {self.name!r}")

    def with_min_observations(self, n: int) -> "MachinePool":
        """Only machines observed at least ``n`` times (the paper keeps
        machines chosen "a sufficient number of times")."""
        kept = tuple(t for t in self.traces if len(t) >= n)
        return MachinePool(traces=kept, name=self.name)

    @property
    def machine_ids(self) -> tuple[str, ...]:
        return tuple(t.machine_id for t in self.traces)
