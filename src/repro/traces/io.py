"""Trace persistence: JSON for pools, CSV for single machines.

The on-disk JSON layout mirrors what the paper's monitoring system
records: per machine a list of ``(timestamp, duration)`` pairs plus
free-form metadata.  CSV is provided for interoperability with the kind
of flat sensor logs the Condor occupancy monitor produces.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.model import AvailabilityTrace, MachinePool

__all__ = ["load_pool_json", "load_trace_csv", "save_pool_json", "save_trace_csv"]

_FORMAT_VERSION = 1


def save_pool_json(pool: MachinePool, path: str | Path) -> None:
    """Serialise a pool to JSON (versioned, self-describing)."""
    doc = {
        "format_version": _FORMAT_VERSION,
        "name": pool.name,
        "machines": [
            {
                "machine_id": t.machine_id,
                "durations": t.durations.tolist(),
                "timestamps": None if t.timestamps is None else t.timestamps.tolist(),
                "censored": None if t.censored is None else t.censored.tolist(),
                "meta": t.meta,
            }
            for t in pool
        ],
    }
    Path(path).write_text(json.dumps(doc))


def load_pool_json(path: str | Path) -> MachinePool:
    """Load a pool saved by :func:`save_pool_json`."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported pool format version: {version!r}")
    traces = tuple(
        AvailabilityTrace(
            machine_id=m["machine_id"],
            durations=np.asarray(m["durations"], dtype=np.float64),
            timestamps=(
                None
                if m.get("timestamps") is None
                else np.asarray(m["timestamps"], dtype=np.float64)
            ),
            censored=(
                None
                if m.get("censored") is None
                else np.asarray(m["censored"], dtype=bool)
            ),
            meta=m.get("meta", {}),
        )
        for m in doc["machines"]
    )
    return MachinePool(traces=traces, name=doc.get("name", "pool"))


def save_trace_csv(trace: AvailabilityTrace, path: str | Path) -> None:
    """One machine as ``timestamp,duration`` rows (monitor-log style)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp", "duration"])
        timestamps = (
            trace.timestamps
            if trace.timestamps is not None
            else np.full(len(trace), np.nan)
        )
        for ts, dur in zip(timestamps, trace.durations):
            writer.writerow([repr(float(ts)), repr(float(dur))])


def load_trace_csv(path: str | Path, *, machine_id: str | None = None) -> AvailabilityTrace:
    """Load a CSV written by :func:`save_trace_csv`."""
    timestamps: list[float] = []
    durations: list[float] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not {"timestamp", "duration"} <= set(reader.fieldnames):
            raise ValueError(f"{path}: expected 'timestamp,duration' header")
        for row in reader:
            timestamps.append(float(row["timestamp"]))
            durations.append(float(row["duration"]))
    ts = np.asarray(timestamps)
    return AvailabilityTrace(
        machine_id=machine_id or Path(path).stem,
        durations=np.asarray(durations),
        timestamps=None if np.all(np.isnan(ts)) else ts,
    )
