"""Diurnal owner behaviour for desktop fleets.

Real desktop availability is famously diurnal: machines are claimed by
their owners during working hours and idle overnight and on weekends
(the measurement study behind the paper spans 18 months of exactly this
pattern).  This module provides a non-homogeneous owner-gap process:

* :class:`DiurnalProfile` -- relative owner-presence intensity by hour
  of week, with a stock office-hours profile;
* :func:`diurnal_gap` -- sample the time until the owner next reclaims
  an idle machine, by thinning an exponential against the profile;
* :class:`DiurnalSessionIterator` -- plugs directly into
  :class:`~repro.condor.machine.CondorMachine` as its ``sessions``
  stream, pairing diurnal gaps with availability durations from any
  fitted/ground-truth distribution.

The availability *durations* stay i.i.d. (the paper's modelling
assumption); only when machines become available follows the clock.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.distributions.base import AvailabilityDistribution

__all__ = [
    "DiurnalProfile",
    "DiurnalSessionIterator",
    "diurnal_gap",
    "offpeak_profile",
    "office_hours_profile",
]

_HOURS_PER_WEEK = 168


class DiurnalProfile:
    """Relative owner-presence intensity per hour of the week.

    ``intensity[h]`` scales the base reclamation rate during hour ``h``
    (0 = Monday 00:00).  Intensity 0 means owners never interrupt during
    that hour; the profile is normalised so its mean is 1, keeping the
    *average* owner-gap equal to the homogeneous model's.
    """

    def __init__(self, intensity) -> None:
        arr = np.asarray(intensity, dtype=np.float64).ravel()
        if arr.size != _HOURS_PER_WEEK:
            raise ValueError(
                f"profile needs {_HOURS_PER_WEEK} hourly intensities, got {arr.size}"
            )
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("intensities must be non-negative and finite")
        mean = arr.mean()
        if mean <= 0:
            raise ValueError("profile cannot be identically zero")
        self.intensity = arr / mean
        self.intensity.setflags(write=False)

    def at(self, t: float) -> float:
        """Intensity at absolute simulation time ``t`` (seconds)."""
        hour = int((t / 3600.0) % _HOURS_PER_WEEK)
        return float(self.intensity[hour])

    @property
    def peak(self) -> float:
        return float(self.intensity.max())


def office_hours_profile(
    *, work_intensity: float = 3.0, evening_intensity: float = 0.5, night_intensity: float = 0.1
) -> DiurnalProfile:
    """The stock profile: 9-17 weekdays busy, evenings light, nights and
    weekends nearly free."""
    intensity = np.full(_HOURS_PER_WEEK, night_intensity)
    for day in range(5):  # Monday..Friday
        base = day * 24
        intensity[base + 9 : base + 17] = work_intensity
        intensity[base + 17 : base + 22] = evening_intensity
    return DiurnalProfile(intensity)


def offpeak_profile() -> DiurnalProfile:
    """Availability-*onset* intensity: the mirror of office hours.

    Machines become free when their owners leave, so onsets concentrate
    in evenings, nights and weekends.
    """
    office = office_hours_profile()
    # invert: high presence -> low onset; floor keeps thinning finite
    inverted = 1.0 / np.maximum(office.intensity, 0.05)
    return DiurnalProfile(inverted)


def diurnal_gap(
    t: float,
    mean_gap: float,
    profile: DiurnalProfile,
    rng: np.random.Generator,
    *,
    max_iterations: int = 100_000,
) -> float:
    """Time from ``t`` until the next profile-modulated event.

    Samples the first event of a non-homogeneous Poisson process with
    rate ``profile.at(.) / mean_gap`` by thinning against the profile's
    peak intensity.  With an availability-onset profile this is the
    owner-busy gap before the machine frees up; with a presence profile
    it is a reclamation arrival.
    """
    if mean_gap <= 0:
        raise ValueError(f"mean gap must be positive, got {mean_gap}")
    lam_max = profile.peak / mean_gap
    elapsed = 0.0
    for _ in range(max_iterations):
        elapsed += float(rng.exponential(1.0 / lam_max))
        accept = profile.at(t + elapsed) / profile.peak
        if rng.random() < accept:
            return elapsed
    raise RuntimeError("thinning failed to produce an owner arrival")


class DiurnalSessionIterator:
    """``(gap, availability)`` stream with diurnal owner behaviour.

    The gap before each availability run is drawn from the
    availability-onset process (default: :func:`offpeak_profile`, so
    machines free up in evenings and weekends), while the availability
    durations stay i.i.d. from ``distribution`` -- the paper's modelling
    assumption.  Tracks the simulated wall clock internally so
    successive gaps land in the right hours.  Use as
    ``CondorMachine(env, mid, iter(...))``.
    """

    def __init__(
        self,
        distribution: AvailabilityDistribution,
        rng: np.random.Generator,
        *,
        mean_gap: float = 1800.0,
        profile: DiurnalProfile | None = None,
        start_time: float = 0.0,
    ) -> None:
        self.distribution = distribution
        self.rng = rng
        self.mean_gap = mean_gap
        self.profile = profile if profile is not None else offpeak_profile()
        self._clock = float(start_time)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return self

    def __next__(self) -> tuple[float, float]:
        gap = diurnal_gap(self._clock, self.mean_gap, self.profile, self.rng)
        duration = float(np.asarray(self.distribution.sample(1, self.rng))[0])
        self._clock += gap + duration
        return gap, duration
