"""Synthetic Condor-pool trace generation.

We do not have the paper's 18 months of UW-Madison Condor measurements,
so (per the substitution table in DESIGN.md) we synthesise a pool whose
statistical character matches what the paper reports:

* availability durations are heavy-tailed; the one machine whose MLE
  parameters the paper publishes is Weibull with shape 0.43 and scale
  3409 -- :data:`PAPER_REFERENCE_SHAPE` / :data:`PAPER_REFERENCE_SCALE`;
* machines are heterogeneous (over 1000 workstations, ~640 usable), so
  per-machine ground-truth parameters are drawn from ranges centred on
  the published machine;
* a configurable fraction of machines follow hyperexponential or
  lognormal ground truths, so no fitted family is trivially
  correctly-specified for the whole pool (desktop reclamation mixes
  "owner came back in minutes" with "machine idle all weekend").

Timestamps are synthesised with exponential idle gaps between
availability intervals, mimicking the monitor's UTC bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.distributions.base import AvailabilityDistribution
from repro.distributions.hyperexponential import Hyperexponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.weibull import Weibull
from repro.traces.model import AvailabilityTrace, MachinePool

__all__ = [
    "PAPER_REFERENCE_SCALE",
    "PAPER_REFERENCE_SHAPE",
    "SyntheticPoolConfig",
    "generate_condor_pool",
    "paper_reference_distribution",
    "paper_reference_trace",
    "synthetic_trace",
]

#: MLE Weibull parameters of the machine trace the paper publishes (§5.1)
PAPER_REFERENCE_SHAPE = 0.43
PAPER_REFERENCE_SCALE = 3409.0


def paper_reference_distribution() -> Weibull:
    """The heavy-tailed Weibull the paper's Table 2 experiment uses."""
    return Weibull(shape=PAPER_REFERENCE_SHAPE, scale=PAPER_REFERENCE_SCALE)


def synthetic_trace(
    distribution: AvailabilityDistribution,
    n: int,
    rng: np.random.Generator,
    *,
    machine_id: str = "synthetic",
    start_time: float = 0.0,
    mean_idle_gap: float = 1800.0,
) -> AvailabilityTrace:
    """Draw ``n`` availability durations from ``distribution``.

    Idle gaps between intervals are exponential with mean
    ``mean_idle_gap`` seconds (owner working at the machine), purely for
    realistic timestamps; the simulators consume durations only.
    """
    if n <= 0:
        raise ValueError(f"trace length must be positive, got {n}")
    durations = np.asarray(distribution.sample(n, rng), dtype=np.float64)
    gaps = rng.exponential(mean_idle_gap, size=n)
    starts = start_time + np.concatenate(([0.0], np.cumsum(durations[:-1] + gaps[:-1])))
    meta = {"ground_truth": distribution.name, **_flatten_params(distribution)}
    return AvailabilityTrace(
        machine_id=machine_id, durations=durations, timestamps=starts, meta=meta
    )


def paper_reference_trace(
    n: int = 5000, rng: np.random.Generator | None = None
) -> AvailabilityTrace:
    """The Table 2 workload: 5000 draws from Weibull(0.43, 3409)."""
    if rng is None:
        rng = np.random.default_rng(2005)
    return synthetic_trace(
        paper_reference_distribution(), n, rng, machine_id="paper-reference"
    )


@dataclass(frozen=True)
class SyntheticPoolConfig:
    """Knobs for the synthetic Condor pool.

    The defaults produce a pool that is laptop-tractable (120 machines,
    125 observations each: 25 training + 100 experimental) while keeping
    the paper's statistical character.  ``family_weights`` controls the
    mix of per-machine ground truths.
    """

    n_machines: int = 120
    n_observations: int = 125
    #: log-uniform range for the Weibull shape parameter
    shape_range: tuple[float, float] = (0.30, 0.70)
    #: log-uniform range for the Weibull scale parameter (seconds);
    #: centred below the paper's reference machine (scale 3409) because
    #: the published pool-average efficiencies (0.75 at C=50 down to 0.33
    #: at C=1500) imply most desktops had short availability runs
    scale_range: tuple[float, float] = (300.0, 8000.0)
    #: probability of each ground-truth family per machine
    family_weights: dict = field(
        default_factory=lambda: {"weibull": 0.6, "hyperexponential": 0.3, "lognormal": 0.1}
    )
    mean_idle_gap: float = 1800.0
    name: str = "synthetic-condor"

    def __post_init__(self) -> None:
        if self.n_machines <= 0 or self.n_observations <= 1:
            raise ValueError("pool must have machines and >1 observation each")
        total = sum(self.family_weights.values())
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"family weights must sum to 1, got {total}")
        unknown = set(self.family_weights) - {"weibull", "hyperexponential", "lognormal"}
        if unknown:
            raise ValueError(f"unknown ground-truth families: {unknown}")


def _flatten_params(dist) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in dist.params().items():
        if isinstance(value, tuple):
            for i, v in enumerate(value):
                out[f"gt_{key}_{i}"] = float(v)
        else:
            out[f"gt_{key}"] = float(value)
    return out


def _draw_ground_truth(config: SyntheticPoolConfig, rng: np.random.Generator):
    families = list(config.family_weights)
    weights = np.asarray([config.family_weights[f] for f in families])
    family = families[int(rng.choice(len(families), p=weights))]
    lo_sh, hi_sh = config.shape_range
    lo_sc, hi_sc = config.scale_range
    shape = float(np.exp(rng.uniform(np.log(lo_sh), np.log(hi_sh))))
    scale = float(np.exp(rng.uniform(np.log(lo_sc), np.log(hi_sc))))
    if family == "weibull":
        return Weibull(shape=shape, scale=scale)
    if family == "hyperexponential":
        # Match the Weibull's heavy-tailed flavour with a fast phase
        # (owner reclaims quickly) and a slow phase (long idle stretch).
        mean = scale * math.gamma(1.0 + 1.0 / shape)
        p_fast = float(rng.uniform(0.35, 0.75))
        fast_mean = float(rng.uniform(0.02, 0.15)) * mean
        # choose the slow mean so the mixture mean matches `mean`
        slow_mean = (mean - p_fast * fast_mean) / (1.0 - p_fast)
        return Hyperexponential(
            probs=[p_fast, 1.0 - p_fast], rates=[1.0 / fast_mean, 1.0 / slow_mean]
        )
    # lognormal with matching log-mean spread
    mu = math.log(scale) - 0.5
    sigma = float(rng.uniform(1.0, 2.0))
    return LogNormal(mu=mu, sigma=sigma)


def generate_condor_pool(
    config: SyntheticPoolConfig | None = None,
    rng: np.random.Generator | None = None,
) -> MachinePool:
    """Generate the synthetic Condor pool described in DESIGN.md."""
    if config is None:
        config = SyntheticPoolConfig()
    if rng is None:
        rng = np.random.default_rng(18 * 30)  # 18-month measurement period
    traces = []
    for i in range(config.n_machines):
        gt = _draw_ground_truth(config, rng)
        durations = np.asarray(gt.sample(config.n_observations, rng), dtype=np.float64)
        gaps = rng.exponential(config.mean_idle_gap, size=config.n_observations)
        starts = np.concatenate(([0.0], np.cumsum(durations[:-1] + gaps[:-1])))
        meta = {"ground_truth": gt.name, **_flatten_params(gt)}
        traces.append(
            AvailabilityTrace(
                machine_id=f"condor-{i:04d}",
                durations=durations,
                timestamps=starts,
                meta=meta,
            )
        )
    return MachinePool(traces=tuple(traces), name=config.name)
