"""Availability traces: containers, synthetic generation, persistence."""

from repro.traces.diurnal import (
    DiurnalProfile,
    DiurnalSessionIterator,
    diurnal_gap,
    office_hours_profile,
    offpeak_profile,
)
from repro.traces.io import load_pool_json, load_trace_csv, save_pool_json, save_trace_csv
from repro.traces.model import TRAINING_SET_SIZE, AvailabilityTrace, MachinePool
from repro.traces.synthetic import (
    PAPER_REFERENCE_SCALE,
    PAPER_REFERENCE_SHAPE,
    SyntheticPoolConfig,
    generate_condor_pool,
    paper_reference_distribution,
    paper_reference_trace,
    synthetic_trace,
)

__all__ = [
    "PAPER_REFERENCE_SCALE",
    "PAPER_REFERENCE_SHAPE",
    "TRAINING_SET_SIZE",
    "AvailabilityTrace",
    "DiurnalProfile",
    "DiurnalSessionIterator",
    "MachinePool",
    "SyntheticPoolConfig",
    "diurnal_gap",
    "office_hours_profile",
    "offpeak_profile",
    "generate_condor_pool",
    "load_pool_json",
    "load_trace_csv",
    "paper_reference_distribution",
    "paper_reference_trace",
    "save_pool_json",
    "save_trace_csv",
    "synthetic_trace",
]
