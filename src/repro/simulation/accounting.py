"""Accounting records for the trace-driven simulator.

Every second of machine availability consumed by the simulated job is
attributed to exactly one bucket -- committed (useful) work, lost work,
checkpoint overhead, or recovery overhead -- so results satisfy an exact
conservation law that the property-based tests assert::

    useful_work + lost_work + checkpoint_overhead + recovery_overhead
        == total_time
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.policy import StoragePolicy

__all__ = ["SimulationConfig", "SimulationResult"]

_PARTIAL_TRANSFER_POLICIES = ("proportional", "full", "none")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one trace-replay run.

    Attributes
    ----------
    checkpoint_cost:
        ``C`` in seconds (the paper sweeps 50..1500).
    recovery_cost:
        ``R`` in seconds; ``None`` means ``R = C`` (the paper's
        convention, both being 500 MB transfers on the same link).
    latency:
        Vaidya's checkpoint latency ``L`` (0 under the paper's strictly
        sequential phases).  The replay bills it per checkpoint
        attempt: a cycle commits only if ``T + C + L`` fits in the
        availability interval, each completed cycle advances time by
        ``T + C + L`` (the ``L`` window counts as checkpoint overhead),
        and an eviction inside the latency window loses the interval's
        work -- the same accounting the Markov optimizer prices via its
        ``L + R + T`` retry horizon.
    checkpoint_size_mb:
        Megabytes per full checkpoint/recovery transfer (500 in the
        paper, matching the Condor machines' 512 MB memories).
    partial_transfer_policy:
        How interrupted transfers count toward network load:
        ``"proportional"`` (bytes actually sent before eviction --
        default, matching what a byte counter on the link would see),
        ``"full"`` (each attempt bills the whole checkpoint), or
        ``"none"`` (only completed transfers count).
    count_recovery_bandwidth:
        Whether recovery transfers contribute to network load (the
        paper's live experiment transfers 500 MB in both directions).
    recover_on_start:
        Whether each occupancy begins with a recovery transfer.  The
        live protocol always performs the initial transfer ("to emulate
        an initial recovery of the available memory"), so the default is
        ``True``.
    schedule_converge_rel_tol:
        Passed through to :class:`~repro.core.schedule.CheckpointSchedule`;
        bounds the number of golden-section solves per schedule.
    storage:
        Optional :class:`~repro.storage.StoragePolicy` routing every
        checkpoint through the storage subsystem: deltas between
        periodic fulls, compression, retention, and restore-chain
        recovery costs.  ``None`` reproduces the paper's flat
        ``checkpoint_size_mb`` transfers.  ``checkpoint_cost`` keeps
        its meaning as the transfer time of one *full, uncompressed*
        image, which fixes the implied link bandwidth.
    """

    checkpoint_cost: float
    recovery_cost: float | None = None
    latency: float = 0.0
    checkpoint_size_mb: float = 500.0
    partial_transfer_policy: str = "proportional"
    count_recovery_bandwidth: bool = True
    recover_on_start: bool = True
    schedule_converge_rel_tol: float | None = 1e-3
    storage: StoragePolicy | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_cost < 0:
            raise ValueError(f"checkpoint cost must be >= 0, got {self.checkpoint_cost}")
        if self.recovery_cost is not None and self.recovery_cost < 0:
            raise ValueError(f"recovery cost must be >= 0, got {self.recovery_cost}")
        # reject unknown policies here, at construction, rather than
        # letting them fall through the simulator's string dispatch
        if (
            not isinstance(self.partial_transfer_policy, str)
            or self.partial_transfer_policy not in _PARTIAL_TRANSFER_POLICIES
        ):
            raise ValueError(
                f"unknown partial transfer policy: {self.partial_transfer_policy!r} "
                f"(use one of {_PARTIAL_TRANSFER_POLICIES})"
            )
        if self.checkpoint_size_mb < 0:
            raise ValueError(f"checkpoint size must be >= 0, got {self.checkpoint_size_mb}")
        if self.storage is not None and not isinstance(self.storage, StoragePolicy):
            raise TypeError(
                f"storage must be a StoragePolicy or None, got {type(self.storage).__name__}"
            )

    @property
    def effective_recovery_cost(self) -> float:
        """``R``, defaulting to ``C``."""
        return self.checkpoint_cost if self.recovery_cost is None else self.recovery_cost


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of replaying one (machine, model, cost) combination."""

    machine_id: str
    model_name: str
    checkpoint_cost: float

    total_time: float
    useful_work: float
    lost_work: float
    checkpoint_overhead: float
    recovery_overhead: float

    n_intervals: int
    n_failures: int
    n_checkpoints_completed: int
    n_checkpoints_attempted: int
    n_recoveries_completed: int
    n_recoveries_attempted: int

    mb_checkpoint: float
    mb_recovery: float

    #: the Markov model's own prediction ``T/Gamma`` for the first interval
    predicted_efficiency: float

    # storage-subsystem counters (zero when ``config.storage`` is None)
    n_full_checkpoints: int = 0
    n_delta_checkpoints: int = 0
    max_restore_chain_len: int = 0
    mb_stored_final: float = 0.0
    mb_gc_freed: float = 0.0

    @property
    def efficiency(self) -> float:
        """Measured fraction of availability spent on committed work."""
        return self.useful_work / self.total_time if self.total_time > 0 else 0.0

    @property
    def mb_total(self) -> float:
        """Total network load in megabytes."""
        return self.mb_checkpoint + self.mb_recovery

    @property
    def mb_per_hour(self) -> float:
        """Average network load rate (the paper's Tables 4/5 column)."""
        return self.mb_total / (self.total_time / 3600.0) if self.total_time > 0 else 0.0

    def conservation_residual(self) -> float:
        """``total - (useful + lost + ckpt + recovery)``; ~0 by construction."""
        return self.total_time - (
            self.useful_work
            + self.lost_work
            + self.checkpoint_overhead
            + self.recovery_overhead
        )
