"""Pool-scale simulation sweeps (machines x models x checkpoint costs).

This drives the paper's Figure 3 / Table 1 (efficiency) and Figure 4 /
Table 3 (network load) protocol:

1. for every machine trace, fit the four candidate models to the first
   ``n_train`` observations (the training set);
2. replay the machine's *entire* trace ("a job that begins before the
   first measurement ... and continues to run after the last") once per
   (model, checkpoint cost) pair;
3. aggregate per-machine efficiencies and megabyte counts into the
   per-(model, cost) vectors that the statistics layer turns into means,
   confidence intervals and paired significance tests.

Machines are independent, so the sweep optionally fans out across
processes (``n_workers``) with a plain ``ProcessPoolExecutor`` -- the
work is CPU-bound interval optimisation, which releases no GIL.  The
fan-out is two-phase: each machine's models are fitted exactly once (one
fit task per machine), then every ``(machine, model)`` replay is
dispatched as its own dynamically scheduled task carrying only the
fitted distribution and the replay durations -- not the raw trace -- so
slow replays (heavy-tailed fits solve many more schedules) no longer
convoy behind a static chunk assignment.  Worker solver caches are
shipped back and folded into the parent's, so later sweeps in the same
process start warm; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import zlib
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.schedule import CheckpointSchedule
from repro.core.solver_cache import active_cache as _active_cache
from repro.distributions.base import AvailabilityDistribution
from repro.distributions.fitting import MODEL_NAMES, fit_model
from repro.obs.metrics import MetricsRegistry, active as _metrics, use as _use_metrics
from repro.obs.tracing import (
    TraceRecorder,
    active as _trace_active,
    use as _use_trace,
)
from repro.simulation.accounting import SimulationConfig, SimulationResult
from repro.simulation.batch_replay import BatchReplayItem, replay_batch
from repro.simulation.trace_sim import simulate_trace, storage_schedule_costs
from repro.traces.model import TRAINING_SET_SIZE, AvailabilityTrace, MachinePool

__all__ = ["PoolSweep", "SweepSettings", "simulate_machine", "simulate_pool"]


@dataclass(frozen=True)
class SweepSettings:
    """Protocol parameters for a pool sweep.

    Attributes
    ----------
    checkpoint_costs:
        The ``C`` values swept on the x-axis (the paper uses
        50..1500 s).
    model_names:
        Candidate models fitted per machine (defaults to the paper's
        four).
    n_train:
        Training-prefix length (the paper's 25).
    replay:
        ``"full"`` replays training+experimental observations (the
        paper's steady-state protocol); ``"experimental"`` replays only
        the held-out suffix.
    base_config:
        Template :class:`SimulationConfig`; its ``checkpoint_cost`` is
        overridden per sweep point.
    em_seed:
        Seed for the hyperexponential EM restarts (per-machine streams
        are derived from it).
    batch_replay:
        Use the vectorized batch replay kernel
        (:mod:`repro.simulation.batch_replay`) for the flat
        (non-storage) path.  The kernel matches the scalar loop to
        <= 1e-9 relative on every result field; set ``False`` to force
        the scalar golden reference.  Storage-backed configs and runs
        with an active trace recorder always take the scalar path,
        which keeps per-event fidelity.
    """

    checkpoint_costs: tuple[float, ...] = (50.0, 100.0, 200.0, 250.0, 400.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0)
    model_names: tuple[str, ...] = MODEL_NAMES
    n_train: int = TRAINING_SET_SIZE
    replay: str = "full"
    base_config: SimulationConfig = SimulationConfig(checkpoint_cost=0.0)
    em_seed: int = 424242
    batch_replay: bool = True

    def __post_init__(self) -> None:
        if not self.checkpoint_costs:
            raise ValueError("at least one checkpoint cost is required")
        if self.replay not in ("full", "experimental"):
            raise ValueError(f"unknown replay mode: {self.replay!r}")


def _fit_machine(
    trace: AvailabilityTrace, settings: SweepSettings
) -> list[tuple[str, AvailabilityDistribution]]:
    """Fit every candidate model to one machine's training prefix.

    All models share one deterministic per-machine EM stream (crc32, not
    ``hash()``: the latter is salted per interpreter) consumed in
    ``model_names`` order, so pool results are reproducible regardless
    of worker scheduling *and* of whether fitting happens in the parent
    or in a worker.
    """
    train, _test = trace.split(settings.n_train)
    machine_key = zlib.crc32(trace.machine_id.encode("utf-8"))
    rng = np.random.default_rng(np.random.SeedSequence([settings.em_seed, machine_key]))
    return [(name, fit_model(name, train, rng=rng)) for name in settings.model_names]


def _replay_durations(trace: AvailabilityTrace, settings: SweepSettings) -> np.ndarray:
    _train, test = trace.split(settings.n_train)
    return trace.durations if settings.replay == "full" else test


def _batch_eligible(settings: SweepSettings) -> bool:
    """Whether the sweep's replays can take the vectorized kernel.

    The batch kernel covers the flat path only and records no trace
    events, so storage-backed configs and runs with an active recorder
    fall back to the scalar golden reference.
    """
    base = settings.base_config
    return (
        settings.batch_replay
        and not (base.storage is not None and base.checkpoint_size_mb > 0)
        and _trace_active() is None
    )


def _replay_model(
    dist: AvailabilityDistribution,
    replay: np.ndarray,
    machine_id: str,
    model_name: str,
    settings: SweepSettings,
) -> list[SimulationResult]:
    """Replay one fitted (machine, model) pair across the cost sweep."""
    if _batch_eligible(settings):
        # one schedule per sweep point, all replaying the same trace:
        # the kernel vectorizes each point's replay over its intervals
        items: list[BatchReplayItem] = []
        for cost in settings.checkpoint_costs:
            config = replace(settings.base_config, checkpoint_cost=float(cost))
            schedule = CheckpointSchedule(
                dist,
                storage_schedule_costs(dist, config),
                t_elapsed=0.0,
                converge_rel_tol=config.schedule_converge_rel_tol,
            )
            items.append(
                BatchReplayItem(
                    schedule=schedule,
                    durations=replay,
                    config=config,
                    machine_id=machine_id,
                    model_name=model_name,
                )
            )
        return replay_batch(items)
    results: list[SimulationResult] = []
    for cost in settings.checkpoint_costs:
        config = replace(settings.base_config, checkpoint_cost=float(cost))
        results.append(
            simulate_trace(
                dist,
                replay,
                config,
                machine_id=machine_id,
                model_name=model_name,
            )
        )
    return results


def simulate_machine(
    trace: AvailabilityTrace, settings: SweepSettings
) -> list[SimulationResult]:
    """Fit models to one machine's training prefix and run its sweep."""
    replay = _replay_durations(trace, settings)
    results: list[SimulationResult] = []
    for model_name, dist in _fit_machine(trace, settings):
        results.extend(
            _replay_model(dist, replay, trace.machine_id, model_name, settings)
        )
    return results


@dataclass(frozen=True)
class PoolSweep:
    """All per-(machine, model, cost) results of one pool sweep."""

    settings: SweepSettings
    results: tuple[SimulationResult, ...]

    def metric_matrix(self, model_name: str, metric: str) -> np.ndarray:
        """``(n_machines, n_costs)`` array of ``metric`` for one model.

        ``metric`` is any numeric attribute/property of
        :class:`SimulationResult` (e.g. ``"efficiency"``, ``"mb_total"``).
        Rows are machines in first-seen order; columns follow
        ``settings.checkpoint_costs``.
        """
        costs = {c: j for j, c in enumerate(self.settings.checkpoint_costs)}
        machines: dict[str, int] = {}
        rows: list[list[float]] = []
        for r in self.results:
            if r.model_name != model_name:
                continue
            if r.machine_id not in machines:
                machines[r.machine_id] = len(rows)
                rows.append([np.nan] * len(costs))
            rows[machines[r.machine_id]][costs[r.checkpoint_cost]] = float(
                getattr(r, metric)
            )
        out = np.asarray(rows, dtype=np.float64)
        if out.size and np.any(np.isnan(out)):
            raise ValueError(f"incomplete sweep for model {model_name!r}")
        return out

    def machines(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.machine_id, None)
        return tuple(seen)


def _fit_machine_star(
    args: tuple[AvailabilityTrace, SweepSettings],
) -> list[tuple[str, AvailabilityDistribution]]:
    """Worker entry point for the fit phase: one machine, all models."""
    trace, settings = args
    return _fit_machine(trace, settings)


def _replay_model_star(
    args: tuple[AvailabilityDistribution, np.ndarray, str, str, SweepSettings, bool, bool],
) -> tuple[
    list[SimulationResult],
    dict[str, Any] | None,
    dict[str, Any] | None,
    dict[str, Any] | None,
]:
    """Worker entry point for the replay phase: one fitted (machine,
    model) pair across the cost sweep, plus (when the parent is
    collecting metrics and/or a trace) snapshots of what the work
    recorded.

    Worker processes do not inherit the parent's registry, recorder or
    solver cache, so each call records into private metrics/trace sinks
    and ships their ``as_dict()`` back with the results; the worker's
    process-global solver cache is snapshot too, so the parent's cache
    ends a sweep holding every solve done anywhere in the fan-out.
    """
    dist, replay, machine_id, model_name, settings, collect_metrics, collect_trace = args
    metrics_snapshot: dict[str, Any] | None = None
    trace_snapshot: dict[str, Any] | None = None
    if not collect_metrics and not collect_trace:
        results = _replay_model(dist, replay, machine_id, model_name, settings)
    else:
        with _use_metrics() as reg:
            if collect_trace:
                with _use_trace() as rec:
                    results = _replay_model(dist, replay, machine_id, model_name, settings)
                trace_snapshot = rec.as_dict()
            else:
                results = _replay_model(dist, replay, machine_id, model_name, settings)
        if collect_metrics:
            metrics_snapshot = reg.as_dict()
    cache = _active_cache()
    cache_snapshot = cache.as_dict() if cache is not None else None
    return results, metrics_snapshot, trace_snapshot, cache_snapshot


def simulate_pool(
    pool: MachinePool | Sequence[AvailabilityTrace],
    settings: SweepSettings | None = None,
    *,
    n_workers: int | None = None,
) -> PoolSweep:
    """Run the full sweep over a machine pool.

    ``n_workers=None`` or ``1`` runs serially; larger values fan machines
    out across processes.  When a metrics registry is active (see
    :mod:`repro.obs`), per-worker registries are merged back into it so
    fan-out is invisible in the run report.
    """
    if settings is None:
        settings = SweepSettings()
    traces = list(pool)
    all_results: list[SimulationResult] = []
    parent_reg: MetricsRegistry | None = _metrics()
    parent_trace: TraceRecorder | None = _trace_active()
    if parent_reg is not None:
        parent_reg.inc("sim.pool.sweeps")
        parent_reg.inc("sim.pool.machines", len(traces))
    parent_cache = _active_cache()
    if n_workers and n_workers > 1 and len(traces) > 1:
        if parent_reg is not None:
            parent_reg.set_gauge("sim.pool.workers", n_workers)
        collect = (parent_reg is not None, parent_trace is not None)
        with ProcessPoolExecutor(max_workers=n_workers) as pool_exec:
            # phase 1: one fit task per machine.  Each fit is submitted
            # individually (dynamic dispatch, no static chunks) so an
            # expensive EM fit on one machine never delays the replays
            # of machines that finished fitting early: phase 2 tasks for
            # a machine are enqueued the moment its fits complete.
            fit_futures: dict[Future[list[tuple[str, AvailabilityDistribution]]], int] = {
                pool_exec.submit(_fit_machine_star, (t, settings)): i
                for i, t in enumerate(traces)
            }
            replay_futures: dict[tuple[int, int], Future[Any]] = {}
            pending = set(fit_futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    mi = fit_futures[fut]
                    trace = traces[mi]
                    replay = _replay_durations(trace, settings)
                    for mj, (model_name, dist) in enumerate(fut.result()):
                        replay_futures[(mi, mj)] = pool_exec.submit(
                            _replay_model_star,
                            (dist, replay, trace.machine_id, model_name, settings, *collect),
                        )
            # collect in deterministic (machine, model) order so results
            # and snapshot merges are independent of worker scheduling
            for mi in range(len(traces)):
                for mj in range(len(settings.model_names)):
                    chunk, metrics_snapshot, trace_snapshot, cache_snapshot = (
                        replay_futures[(mi, mj)].result()
                    )
                    all_results.extend(chunk)
                    if metrics_snapshot is not None and parent_reg is not None:
                        parent_reg.merge_dict(metrics_snapshot)
                    if trace_snapshot is not None and parent_trace is not None:
                        parent_trace.merge_dict(trace_snapshot)
                    if cache_snapshot is not None and parent_cache is not None:
                        # traffic stats stay out: each worker snapshot is
                        # cumulative over its process lifetime, so adding
                        # them per task would multi-count, and the hit /
                        # miss counters already arrive via the metrics
                        # snapshot above
                        parent_cache.merge_dict(cache_snapshot, stats=False)
    else:
        if parent_reg is not None:
            parent_reg.set_gauge("sim.pool.workers", 1)
        for trace in traces:
            all_results.extend(simulate_machine(trace, settings))
    return PoolSweep(settings=settings, results=tuple(all_results))
