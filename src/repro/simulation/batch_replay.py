"""Vectorized (struct-of-arrays) trace replay for machine pools.

:func:`~repro.simulation.trace_sim.replay_schedule` -- the golden
reference -- advances one machine, one availability interval, one
work/checkpoint cycle at a time in pure Python.  That is fine for a few
hundred machines and fatal for the 100k-machine availability sweeps the
policy-grid experiments need.  This module replays the same semantics as
batched array arithmetic with no per-event Python:

1. **Flatten the pool.**  Every machine's availability durations are
   concatenated into one segment array ``a`` with a parallel machine-id
   column (``np.repeat`` of ``arange`` by trace length) -- the classic
   struct-of-arrays layout.
2. **Precompute the schedule's cycle table.**  Each occupancy starts at
   uptime zero, so one schedule serves every interval.  The table
   ``cum[k] = sum_{j<k}(T_j + C + L)`` (work + transfer + commit
   latency per committed cycle) is built once from
   :meth:`~repro.core.schedule.CheckpointSchedule.interval_array`,
   lazily doubled until it covers the longest post-recovery budget seen.
3. **Resolve every interval with one ``searchsorted``.**  The number of
   committed cycles in an interval with post-recovery budget ``a'`` is
   ``searchsorted(cum, a', side='right') - 1``; the remainder
   ``a' - cum[n]`` against ``T_n`` classifies the eviction phase
   (mid-work vs mid-checkpoint/latency window), and committed seconds,
   lost seconds, overhead and transferred MB under all three
   ``partial_transfer_policy`` modes fall out as ``np.where``
   arithmetic.  Per-machine totals are ``np.bincount`` reductions over
   the machine-id column.

The kernel covers the flat (non-storage) path only and emits no trace
events; the scalar loop remains both the golden equivalence reference
(``tests/test_batch_replay.py`` gates every ``SimulationResult`` field
to <= 1e-9 relative) and the dispatch target whenever a storage policy
or an active :class:`~repro.obs.tracing.TraceRecorder` needs per-event
fidelity.  ``benchmarks/test_bench_replay.py`` holds the speedup floor.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Protocol, cast

import numpy as np

from repro.obs.metrics import active as _metrics
from repro.simulation.accounting import SimulationConfig, SimulationResult

__all__ = [
    "BatchReplayArrays",
    "BatchReplayItem",
    "ScheduleLike",
    "replay_batch",
    "replay_flat_pool",
    "replay_schedule_batch",
]

FloatArray = np.ndarray[Any, np.dtype[np.float64]]
IntArray = np.ndarray[Any, np.dtype[np.int64]]

#: Hard ceiling on cycle-table length (cycles), bounding table memory;
#: reaching it means budgets dwarf the cycle length by ~7 orders of
#: magnitude and the scalar loop would be intractable anyway.
MAX_TABLE_CYCLES = 1 << 22


class ScheduleLike(Protocol):
    """The slice of :class:`~repro.core.schedule.CheckpointSchedule`
    the replay kernels consume (duck-typed so tests can pin exact
    work intervals)."""

    def intervals(self, n: int) -> list[float]: ...

    def expected_efficiency(self, i: int = 0) -> float: ...


def _no_progress_error(i: int, T: float, overhead: float) -> ValueError:
    return ValueError(
        f"degenerate schedule: work interval {i} has T={T!r} with a "
        f"per-cycle overhead of {overhead!r} -- the replay cycle makes "
        "no forward progress"
    )


def _cycle_tables(
    schedule: ScheduleLike, overhead: float, max_budget: float
) -> tuple[FloatArray, FloatArray, FloatArray, int]:
    """``(cum, T, cumT, first_bad)`` covering budgets up to ``max_budget``.

    ``cum[k] = sum_{j<k}(T_j + overhead)`` (length ``K+1``), ``T`` the
    work intervals (length ``K``), ``cumT[k] = sum_{j<k} T_j``.
    ``first_bad`` is the index of the first zero-length cycle in the
    table (``-1`` if none): committing such a cycle would never advance
    the clock, so the caller raises if any interval reaches it.
    """
    t_first = float(schedule.intervals(1)[0])
    first_cycle = t_first + overhead
    if first_cycle <= 0.0:
        # every interval with a positive budget would commit cycle 0
        # without advancing time (the scalar loop's infinite spin)
        raise _no_progress_error(0, t_first, overhead)
    # constant-interval schedules (the memoryless common case) make the
    # guess exact; drifting schedules converge within a doubling or two
    guess = int(max_budget / first_cycle) + 2
    K = max(1, min(guess, MAX_TABLE_CYCLES))
    prev_total = -np.inf
    while True:
        T = np.asarray(schedule.intervals(K), dtype=np.float64)
        cyc = T + overhead
        cum = np.empty(K + 1, dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(cyc, out=cum[1:])
        if cum[-1] > max_budget:
            break
        if cum[-1] <= prev_total or K >= MAX_TABLE_CYCLES:
            # doubling added no time: the schedule's tail cycles are all
            # zero-length (or the table ceiling was hit) and the budget
            # can never be covered
            raise _no_progress_error(int(np.argmin(cyc)), float(T.min()), overhead)
        prev_total = float(cum[-1])
        K = min(K * 2, MAX_TABLE_CYCLES)
    bad = np.flatnonzero(cyc <= 0.0)
    first_bad = int(bad[0]) if bad.size else -1
    cumT = np.empty(K + 1, dtype=np.float64)
    cumT[0] = 0.0
    np.cumsum(T, out=cumT[1:])
    return cum, T, cumT, first_bad


def _partial_mb_arr(
    size: float, elapsed: FloatArray, full_time: float, policy: str
) -> FloatArray:
    """Vector twin of ``trace_sim._partial_mb`` (scalar ``full_time``)."""
    if size <= 0.0 or policy == "none":
        return np.zeros_like(elapsed)
    if policy == "full":
        return np.full_like(elapsed, size)
    if full_time <= 0.0:
        return np.zeros_like(elapsed)
    return size * (elapsed / full_time)


@dataclass(frozen=True)
class BatchReplayArrays:
    """Struct-of-arrays outcome of a flat-pool replay.

    Index ``m`` in every array is machine ``m`` of the input pool; each
    column carries exactly what the matching :class:`SimulationResult`
    field would.  Pool-scale consumers (the statistics layer's metric
    matrices, the 100k-machine availability sweeps) reduce these arrays
    directly; :meth:`to_results` materialises the per-machine dataclass
    view, which costs far more than the replay itself at 100k machines.
    """

    checkpoint_cost: float
    predicted_efficiency: float
    n_intervals: IntArray
    total_time: FloatArray
    useful_work: FloatArray
    lost_work: FloatArray
    checkpoint_overhead: FloatArray
    recovery_overhead: FloatArray
    n_checkpoints_completed: IntArray
    n_checkpoints_attempted: IntArray
    n_recoveries_completed: IntArray
    n_recoveries_attempted: IntArray
    mb_checkpoint: FloatArray
    mb_recovery: FloatArray

    def __len__(self) -> int:
        return int(self.total_time.size)

    @property
    def efficiency(self) -> FloatArray:
        """Measured per-machine efficiency (0 for empty machines)."""
        out: FloatArray = np.divide(
            self.useful_work,
            self.total_time,
            out=np.zeros_like(self.useful_work),
            where=self.total_time > 0,
        )
        return out

    @property
    def mb_total(self) -> FloatArray:
        total: FloatArray = self.mb_checkpoint + self.mb_recovery
        return total

    def to_results(
        self,
        machine_ids: Sequence[str] | None = None,
        model_names: Sequence[str] | str = "model",
    ) -> list[SimulationResult]:
        """Materialise one :class:`SimulationResult` per machine."""
        M = len(self)
        ids: Sequence[str]
        if machine_ids is None:
            ids = [f"machine{i:06d}" for i in range(M)]
        elif len(machine_ids) != M:
            raise ValueError(f"got {len(machine_ids)} machine ids for {M} machines")
        else:
            ids = machine_ids
        names: Sequence[str]
        if isinstance(model_names, str):
            names = [model_names] * M
        elif len(model_names) != M:
            raise ValueError(f"got {len(model_names)} model names for {M} machines")
        else:
            names = model_names
        C = self.checkpoint_cost
        pred_eff = self.predicted_efficiency
        return [
            SimulationResult(
                machine_id=ids[m],
                model_name=names[m],
                checkpoint_cost=C,
                total_time=float(self.total_time[m]),
                useful_work=float(self.useful_work[m]),
                lost_work=float(self.lost_work[m]),
                checkpoint_overhead=float(self.checkpoint_overhead[m]),
                recovery_overhead=float(self.recovery_overhead[m]),
                n_intervals=int(self.n_intervals[m]),
                n_failures=int(self.n_intervals[m]),
                n_checkpoints_completed=int(self.n_checkpoints_completed[m]),
                n_checkpoints_attempted=int(self.n_checkpoints_attempted[m]),
                n_recoveries_completed=int(self.n_recoveries_completed[m]),
                n_recoveries_attempted=int(self.n_recoveries_attempted[m]),
                mb_checkpoint=float(self.mb_checkpoint[m]),
                mb_recovery=float(self.mb_recovery[m]),
                predicted_efficiency=pred_eff,
            )
            for m in range(M)
        ]


def replay_flat_pool(
    schedule: ScheduleLike,
    a: FloatArray,
    lengths: IntArray,
    config: SimulationConfig,
) -> BatchReplayArrays:
    """Replay a pre-flattened pool: the struct-of-arrays core.

    ``a`` holds every machine's availability durations concatenated;
    ``lengths[m]`` is machine ``m``'s segment count (``lengths.sum() ==
    a.size``).  This is the whole kernel -- no per-machine Python -- and
    the API of choice at 100k machines, where materialising
    :class:`SimulationResult` objects costs an order of magnitude more
    than the replay.  Supports the flat (non-storage) path only.
    """
    if config.storage is not None and config.checkpoint_size_mb > 0:
        raise ValueError(
            "batch replay supports only the flat (non-storage) path; "
            "use replay_schedule for storage-backed configs"
        )
    lengths = np.asarray(lengths, dtype=np.int64)
    a = np.asarray(a, dtype=np.float64)
    M = int(lengths.size)
    S = int(a.size)
    if int(lengths.sum()) != S or (lengths.size and bool(np.any(lengths < 0))):
        raise ValueError(
            f"segment lengths sum to {int(lengths.sum())} but the pool has {S} segments"
        )
    mid: IntArray = np.repeat(np.arange(M, dtype=np.int64), lengths)

    C = config.checkpoint_cost
    R = config.effective_recovery_cost
    L = config.latency
    size = config.checkpoint_size_mb
    policy = config.partial_transfer_policy
    reg = _metrics()
    t_wall = time.perf_counter() if reg is not None else 0.0

    if a.size and (not bool(np.all(np.isfinite(a))) or bool(np.any(a < 0.0))):
        raise ValueError("availability durations must be non-negative and finite")

    # ---- recovery phase (vectorized over all segments) ---------------
    if config.recover_on_start:
        active = R <= a
        rec_ov_seg = np.where(active, R, a)
        rec_done_seg = active.astype(np.int64)
        if config.count_recovery_bandwidth:
            mb_rec_seg = np.where(
                active, size, _partial_mb_arr(size, a, R, policy)
            )
        else:
            mb_rec_seg = np.zeros(S, dtype=np.float64)
        ap = np.where(active, a - R, 0.0)
        rec_try_m = lengths.astype(np.float64)
    else:
        active = np.ones(S, dtype=bool)
        rec_ov_seg = np.zeros(S, dtype=np.float64)
        rec_done_seg = np.zeros(S, dtype=np.int64)
        mb_rec_seg = np.zeros(S, dtype=np.float64)
        ap = a
        rec_try_m = np.zeros(M, dtype=np.float64)

    # ---- work / checkpoint cycles: one searchsorted per pool ---------
    max_ap = float(ap.max()) if S else 0.0
    table_cycles = 0
    if max_ap > 0.0:
        cum, Tarr, cumT, first_bad = _cycle_tables(schedule, C + L, max_ap)
        if first_bad >= 0 and bool(np.any(ap > cum[first_bad])):
            # the scalar loop raises when it *enters* a zero-length
            # cycle; an interval reaches cycle k when its budget
            # exceeds cum[k]
            raise _no_progress_error(first_bad, float(Tarr[first_bad]), C + L)
        table_cycles = int(Tarr.size)
        n: IntArray = np.searchsorted(cum, ap, side="right").astype(np.int64) - 1
        np.minimum(n, Tarr.size - 1, out=n)
        # segments whose recovery failed carry ap == 0, which resolves
        # to n == 0, r == 0 and zero everything below -- no extra mask
        r = ap - cum[n]
        Tn = Tarr[n]
        # eviction phase: the exact-fit boundary r == Tn counts as
        # mid-work (no transfer ever started), matching replay_schedule
        midckpt = r > Tn
        elapsed = np.where(midckpt, r - Tn, 0.0)
        useful_seg = cumT[n]
        lost_seg = np.where(midckpt, Tn, r)
        ckpt_ov_seg = n * (C + L) + elapsed
        done_seg: IntArray = n
        try_seg: IntArray = done_seg + midckpt.astype(np.int64)
        # committed transfers bill the full image under every policy;
        # an eviction past the C-second wire phase (inside the latency
        # window) left the whole image on the wire, uncommitted
        evicted_full = midckpt & (elapsed >= C)
        mb_evict = np.where(
            evicted_full,
            size,
            np.where(
                midckpt,
                _partial_mb_arr(size, np.minimum(elapsed, C), C, policy),
                0.0,
            ),
        )
        mb_ckpt_seg = done_seg * size + mb_evict
    else:
        useful_seg = np.zeros(S, dtype=np.float64)
        lost_seg = np.zeros(S, dtype=np.float64)
        ckpt_ov_seg = np.zeros(S, dtype=np.float64)
        done_seg = np.zeros(S, dtype=np.int64)
        try_seg = np.zeros(S, dtype=np.int64)
        mb_ckpt_seg = np.zeros(S, dtype=np.float64)

    # ---- per-machine reductions --------------------------------------
    def _bsum(seg: FloatArray | IntArray) -> FloatArray:
        out: FloatArray = np.bincount(mid, weights=seg, minlength=M)
        return out

    useful_m = _bsum(useful_seg)
    lost_m = _bsum(lost_seg)
    ckpt_ov_m = _bsum(ckpt_ov_seg)
    rec_ov_m = _bsum(rec_ov_seg)
    mb_ckpt_m = _bsum(mb_ckpt_seg)
    mb_rec_m = _bsum(mb_rec_seg)
    total_m = _bsum(a)
    done_m = _bsum(done_seg)
    try_m = _bsum(try_seg)
    rec_done_m = _bsum(rec_done_seg)

    out = BatchReplayArrays(
        checkpoint_cost=C,
        predicted_efficiency=float(schedule.expected_efficiency(0)),
        n_intervals=lengths,
        total_time=total_m,
        useful_work=useful_m,
        lost_work=lost_m,
        checkpoint_overhead=ckpt_ov_m,
        recovery_overhead=rec_ov_m,
        n_checkpoints_completed=done_m.astype(np.int64),
        n_checkpoints_attempted=try_m.astype(np.int64),
        n_recoveries_completed=rec_done_m.astype(np.int64),
        n_recoveries_attempted=rec_try_m.astype(np.int64),
        mb_checkpoint=mb_ckpt_m,
        mb_recovery=mb_rec_m,
    )

    if reg is not None:
        wall = time.perf_counter() - t_wall
        reg.inc("sim.replays", float(M))
        reg.inc("sim.machine_seconds", float(a.sum()))
        reg.inc("sim.checkpoints.attempted", float(try_m.sum()))
        reg.inc("sim.checkpoints.completed", float(done_m.sum()))
        reg.inc("link.transferred_mb", float(mb_ckpt_m.sum() + mb_rec_m.sum()))
        reg.inc("sim.batch.calls")
        reg.inc("sim.batch.machines", float(M))
        reg.inc("sim.batch.segments", float(S))
        if table_cycles:
            reg.observe("sim.batch.table_cycles", float(table_cycles))
        reg.observe("sim.replay_seconds", wall)
        reg.observe("sim.batch.replay_seconds", wall)
    return out


def replay_schedule_batch(
    schedule: ScheduleLike,
    durations_list: Sequence[Any],
    config: SimulationConfig,
    *,
    machine_ids: Sequence[str] | None = None,
    model_names: Sequence[str] | str = "model",
) -> list[SimulationResult]:
    """Replay many machines' traces against one shared schedule.

    The batched equivalent of calling
    :func:`~repro.simulation.trace_sim.replay_schedule` once per entry
    of ``durations_list``: one :class:`SimulationResult` per machine, in
    input order, every field matching the scalar loop to <= 1e-9
    relative (counts exactly).  A thin flatten-and-materialise wrapper
    over :func:`replay_flat_pool`; at very large pool sizes prefer that
    core directly -- the array-to-dataclass conversion here dominates
    the replay itself.
    """
    M = len(durations_list)
    arrs = [np.asarray(d, dtype=np.float64).ravel() for d in durations_list]
    lengths: IntArray = np.fromiter((d.size for d in arrs), dtype=np.int64, count=M)
    a: FloatArray = (
        np.concatenate(arrs) if arrs else np.empty(0, dtype=np.float64)
    )
    batch = replay_flat_pool(schedule, a, lengths, config)
    return batch.to_results(machine_ids, model_names)


@dataclass(frozen=True)
class BatchReplayItem:
    """One (schedule, trace, config) unit of a heterogeneous batch."""

    schedule: ScheduleLike
    durations: Any
    config: SimulationConfig
    machine_id: str = "machine"
    model_name: str = "model"


def replay_batch(items: Sequence[BatchReplayItem]) -> list[SimulationResult]:
    """Replay heterogeneous items, vectorizing within groups.

    Items sharing a schedule *and* a config object (identity, not
    equality: the pool runner builds exactly one of each per sweep
    point) are flattened into one kernel invocation; results come back
    in input order.
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for idx, item in enumerate(items):
        groups.setdefault((id(item.schedule), id(item.config)), []).append(idx)
    out: list[SimulationResult | None] = [None] * len(items)
    for idxs in groups.values():
        first = items[idxs[0]]
        chunk = replay_schedule_batch(
            first.schedule,
            [items[i].durations for i in idxs],
            first.config,
            machine_ids=[items[i].machine_id for i in idxs],
            model_names=[items[i].model_name for i in idxs],
        )
        for i, res in zip(idxs, chunk, strict=True):
            out[i] = res
    return cast("list[SimulationResult]", out)
