"""Deterministic trace replay of the recovery/work/checkpoint cycle.

This is the paper's Section 5.1 simulator: given a machine's sequence of
availability durations and a fitted model, replay a long-running job
that, within each availability interval,

1. restores its last checkpoint (``R`` seconds of transfer),
2. computes the model's aperiodic schedule ``T_opt(0), T_opt(1), ...``
   (conditioned on the machine's uptime at each work-interval start),
3. alternates work and ``C``-second checkpoints until the owner reclaims
   the machine, losing whatever work was not yet checkpointed.

Because each occupancy starts at uptime zero, the schedule for a given
(model, costs) pair is identical across intervals -- the simulator
exploits this by reusing one lazily-extended
:class:`~repro.core.schedule.CheckpointSchedule` for the whole trace,
which is what makes full pool sweeps laptop-tractable.

With ``config.storage`` set, checkpoints flow through the storage
subsystem instead of being flat ``checkpoint_size_mb`` transfers: the
per-checkpoint wire bytes come from the :class:`CheckpointStore`'s
full/delta/compression decisions, each recovery fetches the store's
*restore chain* at the link bandwidth implied by ``checkpoint_cost``,
and the schedule is built from the storage-adjusted effective costs so
the optimizer plans with the true ``C`` and ``R``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.markov import CheckpointCosts
from repro.core.schedule import CheckpointSchedule
from repro.distributions.base import AvailabilityDistribution
from repro.obs.metrics import active as _metrics
from repro.obs.tracing import active as _trace_active
from repro.simulation.accounting import SimulationConfig, SimulationResult
from repro.storage.costs import effective_costs
from repro.storage.store import CheckpointStore

__all__ = ["simulate_trace", "replay_schedule", "storage_schedule_costs"]


def storage_schedule_costs(
    distribution: AvailabilityDistribution, config: SimulationConfig
) -> CheckpointCosts:
    """The ``C``/``R`` the schedule should be built from.

    Without a storage policy these are the configured scalars.  With
    one, the expected steady-state storage costs are computed via one
    fixed-point step: solve ``T_opt(0)`` at the base costs, use it as
    the typical work interval sizing the deltas, and re-price.
    """
    base = CheckpointCosts(
        checkpoint=config.checkpoint_cost,
        recovery=config.effective_recovery_cost,
        latency=config.latency,
    )
    if config.storage is None or config.checkpoint_size_mb <= 0 or config.checkpoint_cost <= 0:
        return base
    probe = CheckpointSchedule(
        distribution,
        base,
        t_elapsed=0.0,
        converge_rel_tol=config.schedule_converge_rel_tol,
    )
    return effective_costs(
        config.storage,
        base,
        config.checkpoint_size_mb,
        typical_work=probe.work_interval(0),
    )


def simulate_trace(
    distribution: AvailabilityDistribution,
    durations,
    config: SimulationConfig,
    *,
    machine_id: str = "machine",
    model_name: str | None = None,
) -> SimulationResult:
    """Replay ``durations`` under the schedule induced by ``distribution``.

    Parameters
    ----------
    distribution:
        The fitted availability model steering the schedule.
    durations:
        Availability durations (seconds) to replay, chronological order.
    config:
        Costs and accounting policy.
    machine_id, model_name:
        Labels copied into the result row.
    """
    avail = np.asarray(durations, dtype=np.float64).ravel()
    if avail.size == 0:
        raise ValueError("cannot simulate over an empty trace")
    if np.any(avail < 0) or not np.all(np.isfinite(avail)):
        raise ValueError("availability durations must be non-negative and finite")

    schedule = CheckpointSchedule(
        distribution,
        storage_schedule_costs(distribution, config),
        t_elapsed=0.0,
        converge_rel_tol=config.schedule_converge_rel_tol,
    )
    return replay_schedule(
        schedule,
        avail,
        config,
        machine_id=machine_id,
        model_name=model_name or distribution.name,
    )


def _partial_mb(size_mb: float, elapsed: float, full_time: float, policy: str) -> float:
    """Bytes billed for a transfer of ``size_mb`` evicted after ``elapsed``
    of its ``full_time`` seconds (storage-agnostic partial accounting)."""
    if size_mb <= 0.0:
        return 0.0
    if policy == "full":
        return size_mb
    if policy == "none":
        return 0.0
    # proportional: bytes actually on the wire before eviction
    return size_mb * (elapsed / full_time) if full_time > 0 else 0.0


def replay_schedule(
    schedule: CheckpointSchedule,
    durations: np.ndarray,
    config: SimulationConfig,
    *,
    machine_id: str = "machine",
    model_name: str = "model",
) -> SimulationResult:
    """Replay a pre-built schedule over availability ``durations``.

    Exposed separately so the validation experiment can replay the exact
    schedules observed in the live (DES) system.

    Checkpoint latency ``L`` (``config.latency``) is billed per
    checkpoint attempt: a checkpoint is only *committed* once its
    ``C``-second transfer **and** the ``L``-second commit window have
    both fit inside the availability interval, so each completed cycle
    advances time by ``T + C + L`` and an eviction during either phase
    loses the interval's work.  This matches the Markov model, whose
    retry horizon prices ``L + R + T`` (see ``docs/THEORY.md`` §8).
    """
    if config.storage is not None and config.checkpoint_size_mb > 0:
        return _replay_with_storage(
            schedule, durations, config, machine_id=machine_id, model_name=model_name
        )
    C = config.checkpoint_cost
    R = config.effective_recovery_cost
    L = config.latency
    size = config.checkpoint_size_mb
    policy = config.partial_transfer_policy
    reg = _metrics()
    tr = _trace_active()
    t_wall = time.perf_counter() if reg is not None else 0.0

    useful = 0.0
    lost = 0.0
    ckpt_overhead = 0.0
    rec_overhead = 0.0
    mb_ckpt = 0.0
    mb_rec = 0.0
    n_ckpt_done = 0
    n_ckpt_try = 0
    n_rec_done = 0
    n_rec_try = 0
    base = 0.0  # machine-timeline offset of the current interval's start

    def _transfer_mb(elapsed: float, full_cost: float, completed: bool) -> float:
        if completed:
            return size
        return _partial_mb(size, elapsed, full_cost, policy)

    for a in durations:
        t = 0.0
        # ---- recovery phase -----------------------------------------
        if config.recover_on_start:
            n_rec_try += 1
            if t + R <= a:
                t += R
                rec_overhead += R
                n_rec_done += 1
                billed = _transfer_mb(R, R, completed=True) if config.count_recovery_bandwidth else 0.0
                mb_rec += billed
                if tr is not None:
                    tr.span("replay", "recovery", base, R, track=machine_id, args={"committed": True})
                    tr.span("link", "transfer", base, R, track=machine_id, args={"mb": billed, "phase": "recovery"})
            else:
                elapsed = a - t
                rec_overhead += elapsed
                billed = _transfer_mb(elapsed, R, completed=False) if config.count_recovery_bandwidth else 0.0
                mb_rec += billed
                if tr is not None:
                    tr.span("replay", "recovery", base, elapsed, track=machine_id, args={"committed": False})
                    tr.span("link", "transfer", base, elapsed, track=machine_id, args={"mb": billed, "phase": "recovery"})
                    tr.point("replay", "failure", ts=base + a, track=machine_id)
                base += a
                continue  # eviction during recovery: interval exhausted
        # ---- work / checkpoint cycles -------------------------------
        i = 0
        while t < a:
            T = schedule.work_interval(i)
            if T + C + L <= 0.0:
                # a zero-length cycle would commit without advancing the
                # clock: the replay would spin forever on this interval
                raise ValueError(
                    f"degenerate schedule: work interval {i} has "
                    f"T={T!r} with C={C!r}, L={L!r} -- the replay cycle "
                    "makes no forward progress"
                )
            if t + T + C + L <= a:
                useful += T
                ckpt_overhead += C + L
                n_ckpt_try += 1
                n_ckpt_done += 1
                mb_ckpt += _transfer_mb(C, C, completed=True)
                if tr is not None:
                    tr.span("replay", "work", base + t, T, track=machine_id, args={"committed": True})
                    tr.span("replay", "checkpoint", base + t + T, C + L, track=machine_id, args={"committed": True, "mb": size})
                    tr.span("link", "transfer", base + t + T, C, track=machine_id, args={"mb": size, "phase": "checkpoint"})
                t += T + C + L
                i += 1
            elif t + T >= a:
                # eviction mid-work, including the exact-fit boundary
                # t + T == a: the owner reclaims the machine at (or
                # before) the instant the transfer could begin, so no
                # checkpoint is attempted and no bytes are billed
                lost += a - t
                if tr is not None:
                    tr.span("replay", "work", base + t, a - t, track=machine_id, args={"committed": False})
                t = a
                break
            else:
                # eviction during the transfer or its commit latency:
                # the interval's work is never committed, so it is lost.
                # Bytes flow only during the C-second transfer phase; an
                # eviction inside the latency window leaves the full
                # image on the wire but uncommitted.
                elapsed = a - (t + T)
                lost += T
                ckpt_overhead += elapsed
                n_ckpt_try += 1
                billed = _transfer_mb(min(elapsed, C), C, completed=elapsed >= C)
                mb_ckpt += billed
                if tr is not None:
                    tr.span("replay", "work", base + t, T, track=machine_id, args={"committed": False})
                    tr.span("replay", "checkpoint", base + t + T, elapsed, track=machine_id, args={"committed": False, "mb": billed})
                    tr.span("link", "transfer", base + t + T, min(elapsed, C), track=machine_id, args={"mb": billed, "phase": "checkpoint"})
                t = a
                break
        if tr is not None:
            tr.point("replay", "failure", ts=base + a, track=machine_id)
        base += a

    if reg is not None:
        reg.inc("sim.replays")
        reg.inc("sim.machine_seconds", float(durations.sum()))
        reg.inc("sim.checkpoints.attempted", n_ckpt_try)
        reg.inc("sim.checkpoints.completed", n_ckpt_done)
        reg.inc("link.transferred_mb", mb_ckpt + mb_rec)
        reg.observe("sim.replay_seconds", time.perf_counter() - t_wall)

    return SimulationResult(
        machine_id=machine_id,
        model_name=model_name,
        checkpoint_cost=C,
        total_time=float(durations.sum()),
        useful_work=useful,
        lost_work=lost,
        checkpoint_overhead=ckpt_overhead,
        recovery_overhead=rec_overhead,
        n_intervals=int(durations.size),
        n_failures=int(durations.size),
        n_checkpoints_completed=n_ckpt_done,
        n_checkpoints_attempted=n_ckpt_try,
        n_recoveries_completed=n_rec_done,
        n_recoveries_attempted=n_rec_try,
        mb_checkpoint=mb_ckpt,
        mb_recovery=mb_rec,
        predicted_efficiency=schedule.expected_efficiency(0),
    )


def _replay_with_storage(
    schedule: CheckpointSchedule,
    durations: np.ndarray,
    config: SimulationConfig,
    *,
    machine_id: str,
    model_name: str,
) -> SimulationResult:
    """The storage-aware replay loop.

    The store persists across occupancies (it lives at the checkpoint
    manager, which does not fail when the harvested machine is
    reclaimed), so restore chains built in one occupancy price the next
    occupancy's recovery.  The link bandwidth is the one implied by
    "``checkpoint_cost`` seconds per full uncompressed image"; with
    ``checkpoint_cost == 0`` transfers are instantaneous and only
    compression CPU (if any) takes time.
    """
    C = config.checkpoint_cost
    L = config.latency
    size = config.checkpoint_size_mb
    policy = config.partial_transfer_policy
    store = CheckpointStore(config.storage, size)
    bw = size / C if C > 0 else math.inf
    reg = _metrics()
    tr = _trace_active()
    t_wall = time.perf_counter() if reg is not None else 0.0

    useful = 0.0
    lost = 0.0
    ckpt_overhead = 0.0
    rec_overhead = 0.0
    mb_ckpt = 0.0
    mb_rec = 0.0
    n_ckpt_done = 0
    n_ckpt_try = 0
    n_rec_done = 0
    n_rec_try = 0
    base = 0.0  # machine-timeline offset of the current interval's start

    for a in durations:
        t = 0.0
        # ---- recovery phase: fetch the restore chain ----------------
        if config.recover_on_start:
            chain_mb = store.restore_chain_mb()
            R_i = chain_mb / bw if math.isfinite(bw) else 0.0
            n_rec_try += 1
            if tr is not None:
                tr.point(
                    "storage", "restore_chain", ts=base, track=machine_id,
                    args={"mb": chain_mb, "chain_len": store.chain_length()},
                )
            if t + R_i <= a:
                t += R_i
                rec_overhead += R_i
                n_rec_done += 1
                billed = chain_mb if config.count_recovery_bandwidth else 0.0
                mb_rec += billed
                if tr is not None:
                    tr.span("replay", "recovery", base, R_i, track=machine_id, args={"committed": True})
                    tr.span("link", "transfer", base, R_i, track=machine_id, args={"mb": billed, "phase": "recovery"})
            else:
                elapsed = a - t
                rec_overhead += elapsed
                billed = (
                    _partial_mb(chain_mb, elapsed, R_i, policy)
                    if config.count_recovery_bandwidth
                    else 0.0
                )
                mb_rec += billed
                if tr is not None:
                    tr.span("replay", "recovery", base, elapsed, track=machine_id, args={"committed": False})
                    tr.span("link", "transfer", base, elapsed, track=machine_id, args={"mb": billed, "phase": "recovery"})
                    tr.point("replay", "failure", ts=base + a, track=machine_id)
                base += a
                continue  # eviction during recovery: interval exhausted
        # ---- work / checkpoint cycles -------------------------------
        i = 0
        while t < a:
            T = schedule.work_interval(i)
            if t + T > a:
                lost += a - t  # eviction mid-work
                if tr is not None:
                    tr.span("replay", "work", base + t, a - t, track=machine_id, args={"committed": False})
                t = a
                break
            plan = store.plan_checkpoint(T)
            wire_time = plan.wire_mb / bw if math.isfinite(bw) else 0.0
            # commit latency L is billed after the CPU + wire phases,
            # mirroring the non-storage path (see replay_schedule)
            ckpt_time = plan.cpu_seconds + wire_time + L
            if T + ckpt_time <= 0.0:
                # a zero-length cycle would commit without advancing the
                # clock: the replay would spin forever on this interval
                raise ValueError(
                    f"degenerate schedule: work interval {i} has "
                    f"T={T!r} with a zero-cost checkpoint -- the replay "
                    "cycle makes no forward progress"
                )
            if t + T + ckpt_time <= a:
                useful += T
                ckpt_overhead += ckpt_time
                n_ckpt_try += 1
                n_ckpt_done += 1
                mb_ckpt += plan.wire_mb
                if tr is not None:
                    tr.span("replay", "work", base + t, T, track=machine_id, args={"committed": True})
                    tr.span(
                        "replay", "checkpoint", base + t + T, ckpt_time, track=machine_id,
                        args={"committed": True, "mb": plan.wire_mb, "kind": plan.kind},
                    )
                    if plan.cpu_seconds > 0.0:
                        tr.span("storage", "compress", base + t + T, plan.cpu_seconds, track=machine_id)
                    tr.span(
                        "link", "transfer", base + t + T + plan.cpu_seconds, wire_time,
                        track=machine_id, args={"mb": plan.wire_mb, "phase": "checkpoint"},
                    )
                # store events (commit / GC) are stamped explicitly at
                # the cycle end; the recorder's instrumentation clock is
                # not ours to mutate (the DES engine owns it)
                store.commit(plan, ts=base + t + T + ckpt_time)
                t += T + ckpt_time
                i += 1
            elif t + T >= a:
                # eviction mid-work, including the exact-fit boundary
                # t + T == a: the owner reclaims the machine at (or
                # before) the instant the transfer could begin, so no
                # checkpoint is attempted and no bytes are billed
                lost += a - t
                if tr is not None:
                    tr.span("replay", "work", base + t, a - t, track=machine_id, args={"committed": False})
                t = a
                break
            else:
                # eviction mid-checkpoint: the interval's work is lost
                # and the snapshot is never committed to the store
                elapsed = a - (t + T)
                lost += T
                ckpt_overhead += elapsed
                n_ckpt_try += 1
                # compression runs before bytes flow: only time past the
                # CPU phase moved data; an eviction inside the latency
                # window leaves the full payload on the wire
                if elapsed >= plan.cpu_seconds + wire_time:
                    billed = plan.wire_mb
                else:
                    wire_elapsed = max(0.0, elapsed - plan.cpu_seconds)
                    billed = _partial_mb(plan.wire_mb, wire_elapsed, wire_time, policy)
                mb_ckpt += billed
                if tr is not None:
                    tr.span("replay", "work", base + t, T, track=machine_id, args={"committed": False})
                    tr.span(
                        "replay", "checkpoint", base + t + T, elapsed, track=machine_id,
                        args={"committed": False, "mb": billed, "kind": plan.kind},
                    )
                    cpu_elapsed = min(elapsed, plan.cpu_seconds)
                    if cpu_elapsed > 0.0:
                        tr.span("storage", "compress", base + t + T, cpu_elapsed, track=machine_id)
                    wire_span = min(max(0.0, elapsed - plan.cpu_seconds), wire_time)
                    if wire_span > 0.0 or billed > 0.0:
                        # billed > 0 with no wire time happens under the
                        # "full" partial-transfer policy: the attempt is
                        # billed even though no bytes flowed yet
                        tr.span(
                            "link", "transfer", base + t + T + cpu_elapsed, wire_span,
                            track=machine_id, args={"mb": billed, "phase": "checkpoint"},
                        )
                t = a
                break
        if tr is not None:
            tr.point("replay", "failure", ts=base + a, track=machine_id)
        base += a

    if reg is not None:
        reg.inc("sim.replays")
        reg.inc("sim.machine_seconds", float(durations.sum()))
        reg.inc("sim.checkpoints.attempted", n_ckpt_try)
        reg.inc("sim.checkpoints.completed", n_ckpt_done)
        reg.inc("link.transferred_mb", mb_ckpt + mb_rec)
        reg.observe("sim.replay_seconds", time.perf_counter() - t_wall)

    return SimulationResult(
        machine_id=machine_id,
        model_name=model_name,
        checkpoint_cost=C,
        total_time=float(durations.sum()),
        useful_work=useful,
        lost_work=lost,
        checkpoint_overhead=ckpt_overhead,
        recovery_overhead=rec_overhead,
        n_intervals=int(durations.size),
        n_failures=int(durations.size),
        n_checkpoints_completed=n_ckpt_done,
        n_checkpoints_attempted=n_ckpt_try,
        n_recoveries_completed=n_rec_done,
        n_recoveries_attempted=n_rec_try,
        mb_checkpoint=mb_ckpt,
        mb_recovery=mb_rec,
        predicted_efficiency=schedule.expected_efficiency(0),
        n_full_checkpoints=store.n_full,
        n_delta_checkpoints=store.n_delta,
        max_restore_chain_len=store.max_chain_len,
        mb_stored_final=store.stored_mb(),
        mb_gc_freed=store.gc_freed_mb,
    )
