"""Trace-driven simulation of model-steered checkpointing (Section 5.1)."""

from repro.simulation.accounting import SimulationConfig, SimulationResult
from repro.simulation.runner import PoolSweep, SweepSettings, simulate_machine, simulate_pool
from repro.simulation.trace_sim import (
    replay_schedule,
    simulate_trace,
    storage_schedule_costs,
)

__all__ = [
    "PoolSweep",
    "SimulationConfig",
    "SimulationResult",
    "SweepSettings",
    "replay_schedule",
    "simulate_machine",
    "simulate_pool",
    "simulate_trace",
    "storage_schedule_costs",
]
