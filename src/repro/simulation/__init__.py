"""Trace-driven simulation of model-steered checkpointing (Section 5.1)."""

from repro.simulation.accounting import SimulationConfig, SimulationResult
from repro.simulation.batch_replay import (
    BatchReplayArrays,
    BatchReplayItem,
    replay_batch,
    replay_flat_pool,
    replay_schedule_batch,
)
from repro.simulation.runner import PoolSweep, SweepSettings, simulate_machine, simulate_pool
from repro.simulation.trace_sim import (
    replay_schedule,
    simulate_trace,
    storage_schedule_costs,
)

__all__ = [
    "BatchReplayArrays",
    "BatchReplayItem",
    "PoolSweep",
    "SimulationConfig",
    "SimulationResult",
    "SweepSettings",
    "replay_batch",
    "replay_flat_pool",
    "replay_schedule",
    "replay_schedule_batch",
    "simulate_machine",
    "simulate_pool",
    "simulate_trace",
    "storage_schedule_costs",
]
