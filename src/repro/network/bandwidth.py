"""Time-varying bandwidth models for the checkpoint-storage path.

The paper's empirical section stresses that real checkpoint costs vary
("Variation of network performance, particularly in the wide area, makes
these costs variable when the system is actually used").  We model the
link to the checkpoint manager as a piecewise-constant bandwidth series:

* :class:`ConstantBandwidth` -- the trace simulator's idealisation;
* :class:`PiecewiseConstantBandwidth` -- explicit epochs, used in tests;
* :class:`LognormalAR1Bandwidth` -- a lazily-generated stationary AR(1)
  process in log space, the standard model for wide-area throughput
  variability (heavy right skew, temporal correlation).

Calibration presets :func:`campus_link` and :func:`wan_link` are tuned so
a 500 MB transfer averages ~110 s (Table 4, manager at UW) and ~475 s
(Table 5, manager across the Internet) respectively.
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = [
    "BandwidthModel",
    "ConstantBandwidth",
    "LognormalAR1Bandwidth",
    "PiecewiseConstantBandwidth",
    "campus_link",
    "wan_link",
]


class BandwidthModel(abc.ABC):
    """Piecewise-constant link bandwidth in MB/s."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Bandwidth (MB/s) in effect at time ``t``."""

    @abc.abstractmethod
    def next_change(self, t: float) -> float:
        """First time strictly after ``t`` at which the rate may change
        (``inf`` for a constant model)."""

    def mean_rate(self) -> float:
        """Long-run average rate; used for calibration checks."""
        raise NotImplementedError


class ConstantBandwidth(BandwidthModel):
    """A fixed-rate link."""

    def __init__(self, mbps: float) -> None:
        if not (mbps > 0.0) or not math.isfinite(mbps):
            raise ValueError(f"bandwidth must be positive and finite, got {mbps}")
        self.mbps = float(mbps)

    def rate(self, t: float) -> float:
        return self.mbps

    def next_change(self, t: float) -> float:
        return math.inf

    def mean_rate(self) -> float:
        return self.mbps


class PiecewiseConstantBandwidth(BandwidthModel):
    """Explicit epochs: rate ``rates[i]`` holds on ``[times[i], times[i+1])``.

    ``times[0]`` must be 0; the final rate holds forever.
    """

    def __init__(self, times, rates) -> None:
        t = np.asarray(times, dtype=np.float64).ravel()
        r = np.asarray(rates, dtype=np.float64).ravel()
        if t.shape != r.shape or t.size == 0:
            raise ValueError("times and rates must be non-empty and of equal length")
        if t[0] != 0.0 or np.any(np.diff(t) <= 0):
            raise ValueError("times must start at 0 and strictly increase")
        if np.any(r <= 0):
            raise ValueError("rates must be positive")
        self.times = t
        self.rates = r

    def rate(self, t: float) -> float:
        idx = int(np.searchsorted(self.times, t, side="right") - 1)
        return float(self.rates[max(idx, 0)])

    def next_change(self, t: float) -> float:
        idx = int(np.searchsorted(self.times, t, side="right"))
        return float(self.times[idx]) if idx < self.times.size else math.inf

    def mean_rate(self) -> float:
        if self.times.size == 1:
            return float(self.rates[0])
        widths = np.diff(self.times)
        return float(np.average(self.rates[:-1], weights=widths))


class LognormalAR1Bandwidth(BandwidthModel):
    """Stationary lognormal AR(1) bandwidth, lazily extended.

    In log space the process is ``x_{k+1} = rho * x_k + eps_k`` with
    ``eps ~ N(0, sigma^2 (1 - rho^2))``, so ``x_k ~ N(0, sigma^2)``
    stationary; the rate in epoch ``k`` is
    ``mean_mbps * exp(x_k - sigma^2 / 2)`` (the correction makes the
    *mean* rate equal ``mean_mbps``).
    """

    def __init__(
        self,
        mean_mbps: float,
        *,
        sigma: float = 0.35,
        rho: float = 0.8,
        epoch_seconds: float = 60.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not (mean_mbps > 0.0):
            raise ValueError(f"mean bandwidth must be positive, got {mean_mbps}")
        if not (0.0 <= rho < 1.0):
            raise ValueError(f"AR coefficient must be in [0, 1), got {rho}")
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if epoch_seconds <= 0.0:
            raise ValueError(f"epoch length must be positive, got {epoch_seconds}")
        self.mean_mbps = float(mean_mbps)
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.epoch_seconds = float(epoch_seconds)
        self._rng = rng if rng is not None else np.random.default_rng(475)
        self._log_states: list[float] = [float(self._rng.normal(0.0, self.sigma))]

    def _extend_to(self, k: int) -> None:
        innov_sd = self.sigma * math.sqrt(max(1.0 - self.rho**2, 0.0))
        while len(self._log_states) <= k:
            prev = self._log_states[-1]
            self._log_states.append(
                self.rho * prev + float(self._rng.normal(0.0, innov_sd))
            )

    def rate(self, t: float) -> float:
        k = max(int(t // self.epoch_seconds), 0)
        self._extend_to(k)
        return self.mean_mbps * math.exp(self._log_states[k] - self.sigma**2 / 2.0)

    def next_change(self, t: float) -> float:
        k = max(int(t // self.epoch_seconds), 0)
        return (k + 1) * self.epoch_seconds

    def mean_rate(self) -> float:
        return self.mean_mbps


def campus_link(rng: np.random.Generator | None = None) -> LognormalAR1Bandwidth:
    """Table 4's configuration: manager on the campus LAN.

    500 MB / (500/110 MB/s) ~= 110 s average checkpoint time, with mild
    variability (shared departmental network).
    """
    return LognormalAR1Bandwidth(500.0 / 110.0, sigma=0.20, rho=0.7, rng=rng)


def wan_link(rng: np.random.Generator | None = None) -> LognormalAR1Bandwidth:
    """Table 5's configuration: manager across the wide area.

    500 MB at ~1.05 MB/s ~= 475 s average checkpoint time, with the
    stronger variability of Internet paths.
    """
    return LognormalAR1Bandwidth(500.0 / 475.0, sigma=0.45, rho=0.85, rng=rng)
