"""NWS-style forecasters for checkpoint/recovery cost prediction.

The paper's system "combine[s] this model with predictions of network
performance to the storage site" -- in the authors' ecosystem that
prediction service is the Network Weather Service, which runs several
simple forecasters over the measurement history and selects whichever
has had the lowest error so far.  This module reproduces that design:

* primitive forecasters: last value, sliding mean, sliding median,
  exponential smoothing;
* :class:`ForecasterEnsemble` -- the NWS "forecaster tournament":
  every new measurement scores all members on their previous prediction
  (squared error) and :meth:`predict` answers with the current winner's
  forecast.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

__all__ = [
    "ExponentialSmoothing",
    "Forecaster",
    "ForecasterEnsemble",
    "LastValue",
    "SlidingMean",
    "SlidingMedian",
    "default_ensemble",
]


class Forecaster(abc.ABC):
    """Online one-step-ahead forecaster of a positive time series."""

    name: str = "forecaster"

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Feed one new measurement."""

    @abc.abstractmethod
    def predict(self) -> float:
        """One-step-ahead forecast; requires at least one update."""


class LastValue(Forecaster):
    """Forecast = most recent measurement."""

    name = "last"

    def __init__(self) -> None:
        self._last: float | None = None

    def update(self, value: float) -> None:
        self._last = float(value)

    def predict(self) -> float:
        if self._last is None:
            raise ValueError("no measurements yet")
        return self._last


class SlidingMean(Forecaster):
    """Mean of the last ``window`` measurements."""

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.name = f"mean{window}"
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        if not self._buf:
            raise ValueError("no measurements yet")
        return float(np.mean(self._buf))


class SlidingMedian(Forecaster):
    """Median of the last ``window`` measurements (robust to spikes)."""

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.name = f"median{window}"
        self._buf: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        if not self._buf:
            raise ValueError("no measurements yet")
        return float(np.median(self._buf))


class ExponentialSmoothing(Forecaster):
    """EWMA with smoothing factor ``alpha`` (weight of the newest value)."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.name = f"ewma{alpha:g}"
        self._state: float | None = None

    def update(self, value: float) -> None:
        v = float(value)
        self._state = v if self._state is None else self.alpha * v + (1 - self.alpha) * self._state

    def predict(self) -> float:
        if self._state is None:
            raise ValueError("no measurements yet")
        return self._state


class ForecasterEnsemble(Forecaster):
    """The NWS forecaster tournament: lowest running MSE wins.

    Each :meth:`update` first charges every member the squared error of
    its outstanding prediction, then feeds it the measurement.
    :meth:`predict` returns the forecast of the member with the smallest
    accumulated mean squared error (ties break toward the earliest
    member, making the ensemble deterministic).
    """

    name = "ensemble"

    def __init__(self, members: list[Forecaster] | None = None) -> None:
        self.members = members if members is not None else default_members()
        if not self.members:
            raise ValueError("ensemble needs at least one member")
        self._sq_err = [0.0] * len(self.members)
        self._n_scored = 0
        self._has_data = False

    def update(self, value: float) -> None:
        v = float(value)
        if self._has_data:
            for i, m in enumerate(self.members):
                err = m.predict() - v
                self._sq_err[i] += err * err
            self._n_scored += 1
        for m in self.members:
            m.update(v)
        self._has_data = True

    def predict(self) -> float:
        if not self._has_data:
            raise ValueError("no measurements yet")
        best = min(range(len(self.members)), key=lambda i: self._sq_err[i])
        return self.members[best].predict()

    def best_member(self) -> Forecaster:
        """The member currently winning the tournament."""
        best = min(range(len(self.members)), key=lambda i: self._sq_err[i])
        return self.members[best]

    def mse(self) -> list[float]:
        """Per-member mean squared error so far."""
        n = max(self._n_scored, 1)
        return [se / n for se in self._sq_err]


def default_members() -> list[Forecaster]:
    """The stock NWS-like battery."""
    return [
        LastValue(),
        SlidingMean(5),
        SlidingMean(20),
        SlidingMedian(5),
        SlidingMedian(20),
        ExponentialSmoothing(0.25),
        ExponentialSmoothing(0.5),
    ]


def default_ensemble() -> ForecasterEnsemble:
    """An ensemble over the stock battery."""
    return ForecasterEnsemble(default_members())
