"""A shared network link with fair-share transfers.

The paper's core motivation is that the network is a *shared* resource:
"over-utilization of a shared network resource will negatively impact
the performance of all workstations".  This module models that resource:
a :class:`SharedLink` divides its (possibly time-varying) bandwidth
equally among all in-flight transfers, so concurrent checkpoints slow
each other down -- the collision effect the paper's future-work section
describes for parallel jobs.

Transfers are first-class: :meth:`SharedLink.start_transfer` returns a
:class:`Transfer` whose ``done`` event a process can ``yield``; if the
process is interrupted (eviction) it calls :meth:`SharedLink.abort` and
can read ``transfer.sent_mb`` for the partial-byte accounting the
experiments need.
"""

from __future__ import annotations

import math

from repro.engine.core import Environment, Event
from repro.network.bandwidth import BandwidthModel, ConstantBandwidth
from repro.obs.metrics import active as _metrics
from repro.obs.tracing import active as _trace_active

__all__ = ["SharedLink", "Transfer"]


class Transfer:
    """One in-flight (or finished/aborted) transfer on a shared link."""

    __slots__ = ("size_mb", "sent_mb", "start_time", "end_time", "done", "aborted")

    def __init__(self, env: Environment, size_mb: float) -> None:
        self.size_mb = float(size_mb)
        self.sent_mb = 0.0
        self.start_time = env.now
        self.end_time: float | None = None
        self.done: Event = env.event()
        self.aborted = False

    @property
    def complete(self) -> bool:
        return self.sent_mb >= self.size_mb - 1e-9 and not self.aborted

    @property
    def elapsed(self) -> float:
        """Wall time the transfer has been (or was) active."""
        end = self.end_time if self.end_time is not None else math.inf
        return end - self.start_time


class SharedLink:
    """Fair-share link: each of ``n`` active transfers gets ``rate/n``.

    Progress bookkeeping is event-driven: whenever the active set or the
    bandwidth epoch changes, all transfers' ``sent_mb`` are advanced for
    the elapsed segment and the next completion/epoch event is
    (re)scheduled.  A monotone wake-up sequence number invalidates stale
    scheduled wake-ups, so membership churn never double-counts
    progress.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: BandwidthModel | float,
        *,
        name: str = "link",
        request_latency: float = 0.0,
    ) -> None:
        """``request_latency`` models the paper's footnote: each transfer
        begins with a fixed connection/request delay before bytes flow
        ("the latency of the initial request is insignificant compared
        with the time for the data transfer" -- which the latency
        ablation bench verifies rather than assumes)."""
        if request_latency < 0:
            raise ValueError(f"request latency must be >= 0, got {request_latency}")
        self.env = env
        self.bandwidth = (
            ConstantBandwidth(bandwidth) if isinstance(bandwidth, (int, float)) else bandwidth
        )
        self.name = name
        self.request_latency = float(request_latency)
        self._active: list[Transfer] = []
        self._pending_latency: set[Transfer] = set()
        self._last_update = env.now
        self._wake_seq = 0
        self.total_mb_sent = 0.0  # lifetime byte counter (network-load metric)

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._active)

    def current_rate_per_transfer(self) -> float:
        """MB/s each active transfer currently receives."""
        if not self._active:
            return self.bandwidth.rate(self.env.now)
        return self.bandwidth.rate(self.env.now) / len(self._active)

    def start_transfer(self, size_mb: float) -> Transfer:
        """Begin a transfer of ``size_mb``; returns its handle."""
        if size_mb < 0:
            raise ValueError(f"transfer size must be >= 0, got {size_mb}")
        tr = Transfer(self.env, size_mb)
        if self.request_latency > 0.0:
            self._pending_latency.add(tr)
            wake = self.env.timeout(self.request_latency)
            wake.callbacks.append(lambda _ev, tr=tr: self._admit(tr))
            return tr
        self._admit(tr)
        return tr

    def _admit(self, tr: Transfer) -> None:
        """Move a transfer past its request latency onto the wire."""
        self._pending_latency.discard(tr)
        if tr.aborted:
            return
        self._advance()
        if tr.size_mb == 0.0:
            tr.end_time = self.env.now
            tr.done.succeed(tr)
            return
        reg = _metrics()
        if reg is not None:
            reg.inc("link.transfers")
            if self._active:
                # a collision: this transfer will share the link with
                # the ones already in flight, slowing all of them down
                reg.inc("link.collisions")
            reg.observe("link.concurrency", len(self._active) + 1)
        trace = _trace_active()
        if trace is not None:
            trace.point(
                "link", "admit", ts=self.env.now, track=self.name,
                args={"mb": tr.size_mb, "active": len(self._active) + 1},
            )
        self._active.append(tr)
        self._reschedule()

    def abort(self, transfer: Transfer) -> None:
        """Cancel an in-flight transfer (eviction mid-checkpoint).

        Idempotent; after the call ``transfer.sent_mb`` holds the bytes
        that made it onto the wire.
        """
        if transfer.aborted:
            return
        if transfer in self._pending_latency:
            # evicted during the request handshake: no bytes moved
            self._pending_latency.discard(transfer)
            transfer.aborted = True
            transfer.end_time = self.env.now
            return
        if transfer not in self._active:
            return
        self._advance()
        self._active.remove(transfer)
        transfer.aborted = True
        transfer.end_time = self.env.now
        trace = _trace_active()
        if trace is not None:
            trace.span(
                "link", "transfer", transfer.start_time,
                self.env.now - transfer.start_time, track=self.name,
                args={"mb": transfer.sent_mb, "aborted": True},
            )
        self._reschedule()

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Credit progress for the segment since the last update."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0 and self._active:
            # the bandwidth model is piecewise constant and _reschedule
            # never lets a segment span an epoch boundary, so the rate at
            # the segment start holds throughout
            rate = self.bandwidth.rate(self._last_update) / len(self._active)
            reg = _metrics()
            if reg is not None:
                # the effective per-transfer bandwidth over this segment
                reg.observe("link.effective_mb_per_s", rate)
            segment_mb = 0.0
            for tr in self._active:
                credit = min(rate * dt, tr.size_mb - tr.sent_mb)
                tr.sent_mb += credit
                segment_mb += credit
            self.total_mb_sent += segment_mb
            if reg is not None:
                reg.inc("link.transferred_mb", segment_mb)
            trace = _trace_active()
            if trace is not None:
                # one aggregate-rate sample per fair-share segment
                trace.point(
                    "link", "rate", ts=self._last_update, track=self.name,
                    args={
                        "mb_per_s": rate * len(self._active),
                        "active": len(self._active),
                    },
                )
        self._last_update = now
        # complete finished transfers
        finished = [tr for tr in self._active if tr.sent_mb >= tr.size_mb - 1e-9]
        trace = _trace_active()
        for tr in finished:
            self._active.remove(tr)
            tr.sent_mb = tr.size_mb
            tr.end_time = now
            if trace is not None:
                trace.span(
                    "link", "transfer", tr.start_time, now - tr.start_time,
                    track=self.name, args={"mb": tr.size_mb, "aborted": False},
                )
            tr.done.succeed(tr)

    def _reschedule(self) -> None:
        """Arm the next wake-up (completion or bandwidth epoch)."""
        self._wake_seq += 1
        if not self._active:
            return
        now = self.env.now
        rate = self.bandwidth.rate(now) / len(self._active)
        min_remaining = min(tr.size_mb - tr.sent_mb for tr in self._active)
        eta = min_remaining / rate if rate > 0 else math.inf
        epoch = self.bandwidth.next_change(now) - now
        delay = min(eta, epoch)
        if not math.isfinite(delay):
            raise RuntimeError(f"link {self.name!r}: stalled transfers (zero bandwidth?)")
        seq = self._wake_seq
        wake = self.env.timeout(max(delay, 0.0))
        wake.callbacks.append(lambda _ev, seq=seq: self._on_wake(seq))

    def _on_wake(self, seq: int) -> None:
        if seq != self._wake_seq:
            return  # superseded by a membership/epoch change
        self._advance()
        self._reschedule()
