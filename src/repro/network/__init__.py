"""Network substrate: bandwidth models, shared links, NWS-style forecasters."""

from repro.network.bandwidth import (
    BandwidthModel,
    ConstantBandwidth,
    LognormalAR1Bandwidth,
    PiecewiseConstantBandwidth,
    campus_link,
    wan_link,
)
from repro.network.forecaster import (
    ExponentialSmoothing,
    Forecaster,
    ForecasterEnsemble,
    LastValue,
    SlidingMean,
    SlidingMedian,
    default_ensemble,
)
from repro.network.link import SharedLink, Transfer

__all__ = [
    "BandwidthModel",
    "ConstantBandwidth",
    "ExponentialSmoothing",
    "Forecaster",
    "ForecasterEnsemble",
    "LastValue",
    "LognormalAR1Bandwidth",
    "PiecewiseConstantBandwidth",
    "SharedLink",
    "SlidingMean",
    "SlidingMedian",
    "Transfer",
    "campus_link",
    "default_ensemble",
    "wan_link",
]
