"""The checkpoint manager: storage endpoint, logger, metrics.

The paper's checkpoint manager (a) serves the 500 MB initial-recovery
transfer, (b) tells each test process which availability model and
parameters to use, (c) receives checkpoints and heartbeats, and (d)
keeps a per-process log from which overhead ratios are computed *post
facto*.  This class plays the same roles over a :class:`SharedLink`:
all transfers to/from it contend on that link, so the campus/WAN
configurations of Tables 4 and 5 are just different link bandwidth
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.core import Environment
from repro.network.link import SharedLink, Transfer
from repro.obs.tracing import active as _trace_active

__all__ = ["CheckpointManager", "ModelAggregate", "PlacementLog"]


@dataclass
class PlacementLog:
    """Per-placement record kept by the manager (one test-process run)."""

    model_name: str
    machine_id: str
    started_at: float
    ended_at: float | None = None
    #: right-censored: the placement was still running when the
    #: experiment horizon ended (Section 5.3's censoring effect); such
    #: logs are excluded from the aggregates
    censored: bool = False

    committed_work: float = 0.0
    lost_work: float = 0.0
    recovery_overhead: float = 0.0
    checkpoint_overhead: float = 0.0
    mb_transferred: float = 0.0

    n_checkpoints_completed: int = 0
    n_checkpoints_attempted: int = 0
    recovery_completed: bool = False
    n_heartbeats: int = 0
    #: the schedule actually used: (uptime_at_decision, T_opt, measured_cost)
    decisions: list[tuple[float, float, float]] = field(default_factory=list)
    #: ground-truth availability durations seen (for validation replay)
    eviction_uptime: float | None = None

    @property
    def occupied_time(self) -> float:
        if self.ended_at is None:
            raise RuntimeError("placement still running")
        return self.ended_at - self.started_at

    @property
    def efficiency(self) -> float:
        occ = self.occupied_time
        return self.committed_work / occ if occ > 0 else 0.0


@dataclass(frozen=True)
class ModelAggregate:
    """One row of Table 4 / Table 5."""

    model_name: str
    avg_efficiency: float
    total_time: float
    megabytes_used: float
    megabytes_per_hour: float
    sample_size: int


class CheckpointManager:
    """Checkpoint storage site reachable over a shared link."""

    def __init__(self, env: Environment, link: SharedLink, *, name: str = "manager") -> None:
        self.env = env
        self.link = link
        self.name = name
        self.logs: list[PlacementLog] = []

    # -- transfers -------------------------------------------------------
    def start_transfer(self, size_mb: float) -> Transfer:
        """Begin a checkpoint or recovery transfer over the shared link."""
        return self.link.start_transfer(size_mb)

    def abort_transfer(self, transfer: Transfer) -> None:
        self.link.abort(transfer)

    # -- logging ----------------------------------------------------------
    def open_log(self, model_name: str, machine_id: str) -> PlacementLog:
        log = PlacementLog(
            model_name=model_name, machine_id=machine_id, started_at=self.env.now
        )
        self.logs.append(log)
        return log

    def close_log(self, log: PlacementLog) -> None:
        # idempotent: a log censored at the horizon must not be
        # re-closed when the job generator is finalised by the GC later
        if log.ended_at is None and not log.censored:
            log.ended_at = self.env.now
            tr = _trace_active()
            if tr is not None:
                tr.span(
                    "live", "placement", log.started_at,
                    log.ended_at - log.started_at, track=log.machine_id,
                    args={
                        "model": log.model_name,
                        "committed_work": log.committed_work,
                        "mb": log.mb_transferred,
                        "checkpoints": log.n_checkpoints_completed,
                    },
                )

    def censor_open_logs(self) -> int:
        """Mark all still-open logs as right-censored; returns the count.

        Called by the experiment driver at the horizon, *before* the
        world is torn down -- generator finalisation would otherwise run
        the jobs' ``finally`` blocks and quietly close these logs as if
        the placements had completed.
        """
        n = 0
        tr = _trace_active()
        for log in self.logs:
            if log.ended_at is None:
                log.censored = True
                n += 1
                if tr is not None:
                    tr.point(
                        "live", "censored", ts=self.env.now,
                        track=log.machine_id, args={"model": log.model_name},
                    )
        return n

    # -- aggregation --------------------------------------------------------
    def aggregate(self, model_name: str) -> ModelAggregate:
        """The Table 4/5 row for one model.

        "Avg." is the time-weighted efficiency (total committed work over
        total occupied time), matching how the paper's post-facto log
        analysis computes the overhead ratio.
        """
        logs = [
            lg
            for lg in self.logs
            if lg.model_name == model_name and lg.ended_at is not None and not lg.censored
        ]
        total_time = sum(lg.occupied_time for lg in logs)
        committed = sum(lg.committed_work for lg in logs)
        mb = sum(lg.mb_transferred for lg in logs)
        return ModelAggregate(
            model_name=model_name,
            avg_efficiency=committed / total_time if total_time > 0 else 0.0,
            total_time=total_time,
            megabytes_used=mb,
            megabytes_per_hour=mb / (total_time / 3600.0) if total_time > 0 else 0.0,
            sample_size=len(logs),
        )

    def per_placement_efficiencies(self, model_name: str) -> list[float]:
        """Per-placement efficiency samples (for significance testing)."""
        return [
            lg.efficiency
            for lg in self.logs
            if lg.model_name == model_name
            and lg.ended_at is not None
            and not lg.censored
            and lg.occupied_time > 0
        ]
