"""Gang-scheduled parallel jobs with coordinated checkpointing.

The paper's conclusion sketches the parallel scenario: "when loosely
coupled resources are combined to form a cluster on which parallel
applications can execute, careful usage of the network is crucial".
This module builds that application:

* a **gang job** holds ``width`` machines simultaneously; computation
  progresses only while *all* ranks are up (a barrier-synchronous
  program);
* checkpoints are **coordinated**: every rank pushes its 500 MB at the
  same time over the shared link, so the coordinated checkpoint cost is
  the *slowest* rank's transfer -- self-inflicted contention;
* any eviction interrupts the whole gang: un-checkpointed work is lost,
  the evicted rank is re-queued, the survivors hold their machines, and
  on re-placement the gang performs a coordinated recovery before
  resuming;
* the work interval comes from the same Markov optimizer, driven by the
  :class:`~repro.distributions.product.ProductAvailability` of the
  ranks' fitted models, each conditioned at its machine's current
  uptime -- the natural generalisation of the paper's per-machine
  conditioning.

:func:`run_gang_experiment` wires a fleet, scheduler and link around one
gang job and reports committed work, network load and failure counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.condor.machine import CondorMachine
from repro.condor.scheduler import CondorScheduler
from repro.core.optimizer import optimize_interval
from repro.core.markov import CheckpointCosts
from repro.core.planner import CheckpointPlanner
from repro.distributions.fitting import fit_model
from repro.distributions.product import ProductAvailability
from repro.engine.core import Environment, Event, Interrupt, any_of
from repro.network.bandwidth import campus_link
from repro.network.link import SharedLink
from repro.traces.synthetic import SyntheticPoolConfig, _draw_ground_truth

__all__ = ["GangExperimentConfig", "GangResult", "GangJob", "run_gang_experiment"]


@dataclass
class _Rank:
    """One placed rank: its machine and the process holding it."""

    machine: CondorMachine
    placed_at: float


class GangJob:
    """Coordinator process for one gang-scheduled parallel job."""

    def __init__(
        self,
        env: Environment,
        scheduler: CondorScheduler,
        link: SharedLink,
        planners: dict[str, CheckpointPlanner],
        *,
        width: int,
        checkpoint_size_mb: float = 500.0,
        min_cost_estimate: float = 1.0,
    ) -> None:
        if width < 1:
            raise ValueError(f"gang width must be >= 1, got {width}")
        self.env = env
        self.scheduler = scheduler
        self.link = link
        self.planners = planners
        self.width = width
        self.checkpoint_size_mb = checkpoint_size_mb
        self.min_cost_estimate = min_cost_estimate

        self.committed_work = 0.0
        self.lost_work = 0.0
        self.mb_transferred = 0.0
        self.n_gang_failures = 0
        self.n_coordinated_checkpoints = 0
        self.n_placements = 0

        self._ranks: dict[str, _Rank] = {}
        self._membership_changed: Event = env.event()
        self._rank_down: Event = env.event()
        self.process = env.process(self._run(), name=f"gang[{width}]")
        for _ in range(width):
            self._submit_rank()

    # -- rank lifecycle ---------------------------------------------------
    def _submit_rank(self) -> None:
        self.scheduler.submit(self._rank_body, tag="gang-rank")

    def _rank_body(self, env: Environment, machine: CondorMachine):
        rank = _Rank(machine=machine, placed_at=env.now)
        self._ranks[machine.machine_id] = rank
        self.n_placements += 1
        self._signal_membership()
        try:
            yield env.event()  # hold the machine until evicted
            raise AssertionError("gang rank hold event must never fire")
        except Interrupt:
            self._ranks.pop(machine.machine_id, None)
            self._signal_rank_down()
            self._signal_membership()
            self._submit_rank()  # Condor restarts the evicted member
            return "evicted"

    def _signal_membership(self) -> None:
        ev, self._membership_changed = self._membership_changed, self.env.event()
        if not ev.triggered:
            ev.succeed("membership")

    def _signal_rank_down(self) -> None:
        ev, self._rank_down = self._rank_down, self.env.event()
        if not ev.triggered:
            ev.succeed("rank-down")
        self.n_gang_failures += 1

    # -- coordinated phases -----------------------------------------------
    def _coordinated_transfer(self):
        """All ranks transfer simultaneously; returns (ok, duration)."""
        started = self.env.now
        transfers = [
            self.link.start_transfer(self.checkpoint_size_mb) for _ in range(self.width)
        ]
        pending = [tr.done for tr in transfers]
        fail = self._rank_down
        while pending:
            # `yield any_of(...)` resumes with the *winning source event*
            winner = yield any_of(self.env, pending + [fail])
            if winner is fail:
                for tr in transfers:
                    self.link.abort(tr)
                self.mb_transferred += sum(tr.sent_mb for tr in transfers)
                return False, self.env.now - started
            pending = [ev for ev in pending if not ev.processed]
        self.mb_transferred += sum(tr.sent_mb for tr in transfers)
        return True, self.env.now - started

    def _gang_distribution(self) -> ProductAvailability:
        members = []
        for rank in self._ranks.values():
            planner = self.planners[rank.machine.machine_id]
            uptime = rank.machine.uptime()
            members.append(planner.distribution.conditional(uptime))
        return ProductAvailability(members)

    # -- main loop ----------------------------------------------------------
    def _run(self):
        measured_cost = self.min_cost_estimate
        need_recovery = True  # initial state must be restored on placement
        while True:
            # 1. barrier: wait until the full gang is placed
            while len(self._ranks) < self.width:
                yield self._membership_changed
            # 2. coordinated recovery -- only after (re)placement or a
            #    failure; successful intervals chain without one
            if need_recovery:
                ok, duration = yield from self._coordinated_transfer()
                if not ok:
                    continue
                measured_cost = max(duration, self.min_cost_estimate)
                need_recovery = False
            # 3. plan the interval from the gang's joint availability
            gang_dist = self._gang_distribution()
            opt = optimize_interval(
                gang_dist,
                CheckpointCosts.symmetric(measured_cost),
                age=0.0,  # members already conditioned at their uptimes
            )
            work_interval = opt.T_opt
            # 4. compute until the timer or an eviction
            work_started = self.env.now
            fail = self._rank_down
            winner = yield any_of(
                self.env, [self.env.timeout(work_interval), fail]
            )
            if winner is fail:
                self.lost_work += self.env.now - work_started
                need_recovery = True
                continue
            # 5. coordinated checkpoint commits the interval
            ok, duration = yield from self._coordinated_transfer()
            if not ok:
                self.lost_work += work_interval
                need_recovery = True
                continue
            measured_cost = max(duration, self.min_cost_estimate)
            self.committed_work += work_interval
            self.n_coordinated_checkpoints += 1


@dataclass(frozen=True)
class GangExperimentConfig:
    """Fleet + gang parameters for one experiment run."""

    width: int = 4
    model: str = "hyperexp2"
    horizon: float = 0.5 * 86400.0
    n_machines: int = 16
    checkpoint_size_mb: float = 500.0
    n_train: int = 25
    mean_owner_gap: float = 900.0
    #: multiplier on the campus link's bandwidth; gang checkpoints are
    #: self-contending, so the link is scaled with the width by default
    bandwidth_scale: float | None = None
    seed: int = 2005
    pool_config: SyntheticPoolConfig = field(
        default_factory=lambda: SyntheticPoolConfig(
            # gangs need longer-lived members to make progress at all
            scale_range=(5000.0, 40000.0)
        )
    )

    def __post_init__(self) -> None:
        if self.width < 1 or self.n_machines < self.width:
            raise ValueError("need at least `width` machines")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")


@dataclass(frozen=True)
class GangResult:
    """Outcome of one gang run."""

    config: GangExperimentConfig
    committed_work: float
    lost_work: float
    mb_transferred: float
    n_gang_failures: int
    n_coordinated_checkpoints: int
    n_placements: int
    horizon: float

    @property
    def efficiency(self) -> float:
        """Committed work per wall-clock second of the experiment."""
        return self.committed_work / self.horizon if self.horizon > 0 else 0.0

    @property
    def mb_per_hour(self) -> float:
        return self.mb_transferred / (self.horizon / 3600.0)


def run_gang_experiment(config: GangExperimentConfig | None = None) -> GangResult:
    """Run one gang job over a synthetic fleet for the horizon."""
    if config is None:
        config = GangExperimentConfig()
    env = Environment()
    # Dedicated per-purpose RNG streams: the fleet's ground truths and
    # owner behaviour must be identical across `model` choices for the
    # comparison to be paired, so nothing model-dependent (EM restarts)
    # may share their generators.
    link_rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0]))
    bandwidth = campus_link(link_rng)
    scale = config.bandwidth_scale
    if scale is None:
        scale = float(config.width)  # keep per-rank bandwidth comparable
    bandwidth.mean_mbps *= scale
    link = SharedLink(env, bandwidth, name="gang-link")
    scheduler = CondorScheduler(env)
    planners: dict[str, CheckpointPlanner] = {}
    for i in range(config.n_machines):
        machine_id = f"node-{i:03d}"
        world_rng = np.random.default_rng(np.random.SeedSequence([config.seed, 1, i]))
        fit_rng = np.random.default_rng(np.random.SeedSequence([config.seed, 2, i]))
        gt = _draw_ground_truth(config.pool_config, world_rng)
        history = np.asarray(gt.sample(config.n_train, world_rng), dtype=np.float64)
        planners[machine_id] = CheckpointPlanner(
            distribution=fit_model(config.model, history, rng=fit_rng),
            model_name=config.model,
        )
        CondorMachine.from_distribution(
            env,
            machine_id,
            gt,
            world_rng,
            mean_owner_gap=config.mean_owner_gap,
            scheduler=scheduler,
        )
    gang = GangJob(
        env,
        scheduler,
        link,
        planners,
        width=config.width,
        checkpoint_size_mb=config.checkpoint_size_mb,
    )
    env.run(until=config.horizon)
    return GangResult(
        config=config,
        committed_work=gang.committed_work,
        lost_work=gang.lost_work,
        mb_transferred=gang.mb_transferred,
        n_gang_failures=gang.n_gang_failures,
        n_coordinated_checkpoints=gang.n_coordinated_checkpoints,
        n_placements=gang.n_placements,
        horizon=config.horizon,
    )
