"""Desktop machines with owner-reclamation behaviour.

A :class:`CondorMachine` alternates between *owner-busy* gaps and
*available* stretches.  While available it can host exactly one guest
job; when the owner returns (mouse wiggle, keyboard, local load) the
guest is evicted -- in Vanilla-universe terms, terminated for later
restart -- by interrupting its process with an :class:`Eviction` cause.

Machines can be driven by a ground-truth availability distribution
(synthetic pool) or by replaying a recorded trace (validation runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.distributions.base import AvailabilityDistribution
from repro.engine.core import Environment, Process

if TYPE_CHECKING:
    from repro.condor.scheduler import CondorScheduler

__all__ = ["CondorMachine", "Eviction"]


@dataclass(frozen=True)
class Eviction:
    """Interrupt cause delivered to a guest job on owner reclamation."""

    machine_id: str
    reason: str = "owner-reclaimed"
    available_for: float = 0.0


class CondorMachine:
    """One desktop workstation participating in the Condor pool."""

    def __init__(
        self,
        env: Environment,
        machine_id: str,
        sessions: Iterator[tuple[float, float]],
        *,
        scheduler: "CondorScheduler | None" = None,
        attributes: dict | None = None,
    ) -> None:
        """``sessions`` yields ``(owner_busy_gap, available_duration)``
        pairs; exhaustion retires the machine.

        ``attributes`` is the machine's ClassAd-style advertisement
        (e.g. ``{"memory_mb": 512, "arch": "x86"}``); job requirements
        are evaluated against it by the scheduler.
        """
        self.env = env
        self.machine_id = machine_id
        self._sessions = sessions
        self.scheduler = scheduler
        self.attributes: dict = dict(attributes or {})
        self.available_since: float | None = None
        self.current_job: Process | None = None
        self.observed_durations: list[float] = []  # ground truth, for validation
        self.process = env.process(self._run(), name=f"machine:{machine_id}")

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_distribution(
        cls,
        env: Environment,
        machine_id: str,
        distribution: AvailabilityDistribution,
        rng: np.random.Generator,
        *,
        mean_owner_gap: float = 1800.0,
        scheduler: "CondorScheduler | None" = None,
        attributes: dict | None = None,
    ) -> "CondorMachine":
        """Availability durations drawn i.i.d. from ``distribution``."""

        def gen() -> Iterator[tuple[float, float]]:
            while True:
                gap = float(rng.exponential(mean_owner_gap))
                duration = float(np.asarray(distribution.sample(1, rng))[0])
                yield gap, duration

        return cls(env, machine_id, gen(), scheduler=scheduler, attributes=attributes)

    @classmethod
    def from_trace(
        cls,
        env: Environment,
        machine_id: str,
        durations,
        *,
        gaps=None,
        mean_owner_gap: float = 1800.0,
        rng: np.random.Generator | None = None,
        scheduler: "CondorScheduler | None" = None,
        attributes: dict | None = None,
    ) -> "CondorMachine":
        """Replay recorded availability ``durations`` (with optional gaps)."""
        durations = np.asarray(durations, dtype=np.float64)
        if gaps is None:
            local_rng = rng if rng is not None else np.random.default_rng(0)
            gaps = local_rng.exponential(mean_owner_gap, size=durations.size)
        gaps = np.asarray(gaps, dtype=np.float64)

        def gen() -> Iterator[tuple[float, float]]:
            yield from zip(gaps, durations)

        return cls(env, machine_id, gen(), scheduler=scheduler, attributes=attributes)

    # -- state ------------------------------------------------------------
    @property
    def is_available(self) -> bool:
        return self.available_since is not None

    @property
    def is_idle(self) -> bool:
        """Available and not hosting a job."""
        return self.is_available and self.current_job is None

    def uptime(self) -> float:
        """Seconds since the machine last became available (``T_elapsed``)."""
        if self.available_since is None:
            raise RuntimeError(f"machine {self.machine_id} is not available")
        return self.env.now - self.available_since

    # -- guest-job management ----------------------------------------------
    def assign(self, job: Process) -> None:
        if not self.is_idle:
            raise RuntimeError(f"machine {self.machine_id} cannot accept a job now")
        self.current_job = job

    def release(self, job: Process) -> None:
        """Called when a guest job ends for any reason."""
        if self.current_job is job:
            self.current_job = None
            if self.is_available and self.scheduler is not None:
                self.scheduler.notify_idle(self)

    # -- owner behaviour -----------------------------------------------------
    def _run(self):
        for gap, duration in self._sessions:
            yield self.env.timeout(gap)
            self.available_since = self.env.now
            if self.scheduler is not None:
                self.scheduler.notify_idle(self)
            yield self.env.timeout(duration)
            # owner reclaims the machine
            self.available_since = None
            self.observed_durations.append(duration)
            job, self.current_job = self.current_job, None
            if self.scheduler is not None:
                self.scheduler.notify_reclaimed(self)
            if job is not None and job.is_alive:
                job.interrupt(
                    Eviction(machine_id=self.machine_id, available_for=duration)
                )
        return None
