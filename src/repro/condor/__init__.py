"""Condor substrate: machines, scheduler, monitor, manager, live runs."""

from repro.condor.gang import (
    GangExperimentConfig,
    GangJob,
    GangResult,
    run_gang_experiment,
)
from repro.condor.live import LiveExperimentConfig, LiveExperimentResult, run_live_experiment
from repro.condor.logio import load_placement_logs, save_placement_logs
from repro.condor.machine import CondorMachine, Eviction
from repro.condor.manager import CheckpointManager, ModelAggregate, PlacementLog
from repro.condor.monitor import OccupancyRecorder, collect_traces, make_monitor_job
from repro.condor.scheduler import CondorScheduler, JobSubmission, Placement
from repro.condor.testprocess import HEARTBEAT_PERIOD, make_test_process

__all__ = [
    "HEARTBEAT_PERIOD",
    "CheckpointManager",
    "CondorMachine",
    "CondorScheduler",
    "Eviction",
    "GangExperimentConfig",
    "GangJob",
    "GangResult",
    "JobSubmission",
    "LiveExperimentConfig",
    "LiveExperimentResult",
    "ModelAggregate",
    "OccupancyRecorder",
    "Placement",
    "PlacementLog",
    "collect_traces",
    "load_placement_logs",
    "make_monitor_job",
    "save_placement_logs",
    "make_test_process",
    "run_gang_experiment",
    "run_live_experiment",
]
