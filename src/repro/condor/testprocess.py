"""The instrumented test process of Section 5.2.

Protocol (verbatim from the paper, implemented step by step):

1. when Condor places the process on a machine, it opens a connection to
   the checkpoint manager, which initiates a 500 MB transfer emulating
   the initial recovery; the process times the transfer.  If evicted
   mid-transfer, the manager records the elapsed time as recovery
   overhead;
2. the measured transfer time becomes the current estimate of both ``C``
   and ``R``; the process computes one checkpoint interval ``T_opt``
   from the configured model (conditioned on the machine's uptime) and
   reports it to the manager;
3. it "computes" -- spins -- for ``T_opt`` seconds, heart-beating every
   10 s (we account heartbeats arithmetically rather than as discrete
   events);
4. it transfers 500 MB back to emulate a checkpoint; the new transfer
   time re-measures ``C``/``R``, a new ``T_opt`` is computed from the
   updated uptime, and the cycle repeats;
5. eviction at any point ends the placement; partial transfer time is
   logged as checkpoint/recovery overhead and un-checkpointed work as
   lost.

An optional :class:`~repro.network.forecaster.Forecaster` smooths the
cost measurements before they parameterise the optimizer (the NWS role);
the default reproduces the paper's last-measurement behaviour.
"""

from __future__ import annotations

from typing import Generator

from repro.condor.machine import CondorMachine
from repro.condor.manager import CheckpointManager
from repro.core.planner import CheckpointPlanner
from repro.engine.core import Environment, Interrupt
from repro.network.forecaster import Forecaster, LastValue
from repro.workload.sizes import CheckpointSizeModel, ConstantSize

__all__ = ["HEARTBEAT_PERIOD", "make_test_process"]

#: seconds between heartbeat messages to the manager
HEARTBEAT_PERIOD = 10.0


def make_test_process(
    manager: CheckpointManager,
    planner: CheckpointPlanner,
    *,
    checkpoint_size_mb: float = 500.0,
    size_model: "CheckpointSizeModel | None" = None,
    forecaster: Forecaster | None = None,
    min_cost_estimate: float = 1.0,
):
    """Build a job body (``(env, machine) -> generator``) for the scheduler.

    ``size_model`` optionally varies the checkpoint size with job
    progress (see :mod:`repro.workload`); the default reproduces the
    paper's constant 500 MB.  Because the optimizer is re-parameterised
    from each *measured* transfer, growing state automatically lengthens
    the planned intervals -- the cost estimate tracks the state size with
    one-transfer lag, exactly like the real protocol.
    """
    if size_model is None:
        size_model = ConstantSize(checkpoint_size_mb)

    def body(env: Environment, machine: CondorMachine) -> Generator:
        fc = forecaster if forecaster is not None else LastValue()
        log = manager.open_log(planner.model_name, machine.machine_id)
        try:
            # ---- step 1: initial recovery transfer --------------------
            transfer = manager.start_transfer(size_model.recovery_size_mb(0.0))
            try:
                yield transfer.done
            except Interrupt as evt:
                manager.abort_transfer(transfer)
                log.recovery_overhead += transfer.elapsed
                log.mb_transferred += transfer.sent_mb
                log.eviction_uptime = getattr(evt.cause, "available_for", None)
                return "evicted-during-recovery"
            log.recovery_overhead += transfer.elapsed
            log.mb_transferred += transfer.sent_mb
            log.recovery_completed = True
            fc.update(max(transfer.elapsed, min_cost_estimate))

            # ---- steps 2-4: work/checkpoint cycles ---------------------
            while True:
                cost = max(fc.predict(), min_cost_estimate)
                uptime = machine.uptime()
                opt = planner.optimal_interval(
                    checkpoint_cost=cost, recovery_cost=cost, t_elapsed=uptime
                )
                T = opt.T_opt
                log.decisions.append((uptime, T, cost))
                work_started = env.now
                try:
                    yield env.timeout(T)
                except Interrupt as evt:
                    worked = env.now - work_started
                    log.lost_work += worked
                    log.n_heartbeats += int(worked // HEARTBEAT_PERIOD)
                    log.eviction_uptime = getattr(evt.cause, "available_for", None)
                    return "evicted-during-work"
                log.n_heartbeats += int(T // HEARTBEAT_PERIOD)

                log.n_checkpoints_attempted += 1
                transfer = manager.start_transfer(
                    size_model.size_mb(log.committed_work + T, log.n_checkpoints_attempted)
                )
                try:
                    yield transfer.done
                except Interrupt as evt:
                    manager.abort_transfer(transfer)
                    log.lost_work += T  # work not yet durable
                    log.checkpoint_overhead += transfer.elapsed
                    log.mb_transferred += transfer.sent_mb
                    log.eviction_uptime = getattr(evt.cause, "available_for", None)
                    return "evicted-during-checkpoint"
                log.committed_work += T
                log.checkpoint_overhead += transfer.elapsed
                log.mb_transferred += transfer.sent_mb
                log.n_checkpoints_completed += 1
                fc.update(max(transfer.elapsed, min_cost_estimate))
        finally:
            manager.close_log(log)

    return body
