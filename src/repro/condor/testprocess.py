"""The instrumented test process of Section 5.2.

Protocol (verbatim from the paper, implemented step by step):

1. when Condor places the process on a machine, it opens a connection to
   the checkpoint manager, which initiates a 500 MB transfer emulating
   the initial recovery; the process times the transfer.  If evicted
   mid-transfer, the manager records the elapsed time as recovery
   overhead;
2. the measured transfer time becomes the current estimate of both ``C``
   and ``R``; the process computes one checkpoint interval ``T_opt``
   from the configured model (conditioned on the machine's uptime) and
   reports it to the manager;
3. it "computes" -- spins -- for ``T_opt`` seconds, heart-beating every
   10 s (we account heartbeats arithmetically rather than as discrete
   events);
4. it transfers 500 MB back to emulate a checkpoint; the new transfer
   time re-measures ``C``/``R``, a new ``T_opt`` is computed from the
   updated uptime, and the cycle repeats;
5. eviction at any point ends the placement; partial transfer time is
   logged as checkpoint/recovery overhead and un-checkpointed work as
   lost.

An optional :class:`~repro.network.forecaster.Forecaster` smooths the
cost measurements before they parameterise the optimizer (the NWS role);
the default reproduces the paper's last-measurement behaviour.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.condor.machine import CondorMachine
from repro.condor.manager import CheckpointManager
from repro.core.planner import CheckpointPlanner
from repro.engine.core import Environment, Interrupt
from repro.network.forecaster import Forecaster, LastValue
from repro.storage.policy import StoragePolicy
from repro.storage.store import CheckpointStore
from repro.workload.sizes import CheckpointSizeModel, ConstantSize

__all__ = ["HEARTBEAT_PERIOD", "make_test_process"]

#: seconds between heartbeat messages to the manager
HEARTBEAT_PERIOD = 10.0


def make_test_process(
    manager: CheckpointManager,
    planner: CheckpointPlanner,
    *,
    checkpoint_size_mb: float = 500.0,
    size_model: "CheckpointSizeModel | None" = None,
    storage: StoragePolicy | None = None,
    forecaster: Forecaster | None = None,
    min_cost_estimate: float = 1.0,
):
    """Build a job body (``(env, machine) -> generator``) for the scheduler.

    ``size_model`` optionally varies the checkpoint size with job
    progress (see :mod:`repro.workload`); the default reproduces the
    paper's constant 500 MB.  Because the optimizer is re-parameterised
    from each *measured* transfer, growing state automatically lengthens
    the planned intervals -- the cost estimate tracks the state size with
    one-transfer lag, exactly like the real protocol.

    ``storage`` optionally routes the transfers through a
    :class:`~repro.storage.CheckpointStore` kept at the manager:
    checkpoints become full/delta snapshots (optionally compressed, the
    compression CPU spent on the machine before bytes flow), recoveries
    fetch the store's restore chain, and the store -- like the manager
    it lives on -- survives evictions, so retention spans placements.
    The re-measured transfer costs then automatically feed the
    storage-adjusted ``C``/``R`` to the optimizer.
    """
    if size_model is None:
        size_model = ConstantSize(checkpoint_size_mb)
    # one store per job factory: server-side state shared across placements
    store = CheckpointStore(storage, checkpoint_size_mb) if storage is not None else None

    def body(env: Environment, machine: CondorMachine) -> Generator:
        fc = forecaster if forecaster is not None else LastValue()
        log = manager.open_log(planner.model_name, machine.machine_id)
        try:
            # ---- step 1: initial recovery transfer --------------------
            # with a store, recovery fetches the restore chain built in
            # earlier placements (full image on the very first one)
            recovery_mb = (
                store.restore_chain_mb(size_model.recovery_size_mb(0.0))
                if store is not None
                else size_model.recovery_size_mb(0.0)
            )
            transfer = manager.start_transfer(recovery_mb)
            try:
                yield transfer.done
            except Interrupt as evt:
                manager.abort_transfer(transfer)
                log.recovery_overhead += transfer.elapsed
                log.mb_transferred += transfer.sent_mb
                log.eviction_uptime = getattr(evt.cause, "available_for", None)
                return "evicted-during-recovery"
            log.recovery_overhead += transfer.elapsed
            log.mb_transferred += transfer.sent_mb
            log.recovery_completed = True
            fc.update(max(transfer.elapsed, min_cost_estimate))

            # ---- steps 2-4: work/checkpoint cycles ---------------------
            while True:
                cost = max(fc.predict(), min_cost_estimate)
                uptime = machine.uptime()
                opt = planner.optimal_interval(
                    checkpoint_cost=cost, recovery_cost=cost, t_elapsed=uptime
                )
                T = opt.T_opt
                log.decisions.append((uptime, T, cost))
                work_started = env.now
                try:
                    yield env.timeout(T)
                except Interrupt as evt:
                    worked = env.now - work_started
                    log.lost_work += worked
                    log.n_heartbeats += int(worked // HEARTBEAT_PERIOD)
                    log.eviction_uptime = getattr(evt.cause, "available_for", None)
                    return "evicted-during-work"
                log.n_heartbeats += int(T // HEARTBEAT_PERIOD)

                log.n_checkpoints_attempted += 1
                full_now = size_model.size_mb(
                    log.committed_work + T, log.n_checkpoints_attempted
                )
                plan = None
                if store is not None:
                    plan = store.plan_checkpoint(T, full_mb=full_now)
                    if plan.cpu_seconds > 0.0:
                        # compression happens on the machine before any
                        # bytes flow; eviction here loses the interval
                        cpu_started = env.now
                        try:
                            yield env.timeout(plan.cpu_seconds)
                        except Interrupt as evt:
                            log.lost_work += T
                            log.checkpoint_overhead += env.now - cpu_started
                            log.eviction_uptime = getattr(
                                evt.cause, "available_for", None
                            )
                            return "evicted-during-checkpoint"
                    transfer = manager.start_transfer(plan.wire_mb)
                else:
                    transfer = manager.start_transfer(full_now)
                try:
                    yield transfer.done
                except Interrupt as evt:
                    manager.abort_transfer(transfer)
                    log.lost_work += T  # work not yet durable
                    log.checkpoint_overhead += transfer.elapsed
                    log.mb_transferred += transfer.sent_mb
                    log.eviction_uptime = getattr(evt.cause, "available_for", None)
                    return "evicted-during-checkpoint"
                log.committed_work += T
                log.checkpoint_overhead += transfer.elapsed
                log.mb_transferred += transfer.sent_mb
                log.n_checkpoints_completed += 1
                if store is not None:
                    store.commit(plan)
                cpu_cost = plan.cpu_seconds if plan is not None else 0.0
                fc.update(max(transfer.elapsed + cpu_cost, min_cost_estimate))
        finally:
            manager.close_log(log)

    return body
