"""The Condor negotiator: FIFO matchmaking of jobs to idle machines.

Condor's real matchmaker evaluates ClassAd requirements; for this
reproduction the relevant behaviour is much simpler -- a submitted job
waits in a queue until some machine is idle, runs there until it
completes or is evicted, and the machine returns to the idle set when
the job ends (if the owner has not reclaimed it).

Jobs are *job factories*: callables ``(env, machine) -> generator`` so
each placement gets a fresh coroutine.  An optional ``on_complete``
callback per submission lets experiment drivers resubmit evicted jobs,
which is how the paper "repeatedly submit[s] copies of the test
process".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import Any

from repro.condor.machine import CondorMachine
from repro.engine.core import Environment, Process

__all__ = ["CondorScheduler", "JobSubmission", "Placement"]

JobBody = Callable[[Environment, CondorMachine], Generator]


@dataclass
class JobSubmission:
    """One queued job: a factory plus completion bookkeeping.

    ``requirements`` is a ClassAd-lite constraint: either a mapping of
    minimum attribute values (``{"memory_mb": 512}`` -- the paper's test
    process needs machines with at least 512 MB for its 500 MB
    checkpoints) or a predicate over the machine.  ``rank`` orders the
    eligible idle machines (higher is better, ties break toward the
    lowest machine id).
    """

    body: JobBody
    tag: Any = None
    on_complete: Callable[["Placement"], None] | None = None
    submitted_at: float = 0.0
    requirements: Any = None
    rank: Callable[[CondorMachine], float] | None = None

    def matches(self, machine: CondorMachine) -> bool:
        """Whether ``machine`` satisfies this job's requirements."""
        if self.requirements is None:
            return True
        if callable(self.requirements):
            return bool(self.requirements(machine))
        for key, minimum in self.requirements.items():
            value = machine.attributes.get(key)
            if value is None or value < minimum:
                return False
        return True


@dataclass
class Placement:
    """One job-on-machine execution record."""

    submission: JobSubmission
    machine_id: str
    started_at: float
    process: Process = field(repr=False, default=None)
    ended_at: float | None = None

    @property
    def occupied_time(self) -> float:
        if self.ended_at is None:
            raise RuntimeError("placement still running")
        return self.ended_at - self.started_at

    @property
    def result(self) -> Any:
        if self.ended_at is None:
            raise RuntimeError("placement still running")
        return self.process.value


class CondorScheduler:
    """FIFO queue + idle set + matchmaking."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.queue: deque[JobSubmission] = deque()
        self._idle: dict[str, CondorMachine] = {}
        self.placements: list[Placement] = []
        self.n_matches = 0

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        body: JobBody,
        *,
        tag: Any = None,
        on_complete: Callable[[Placement], None] | None = None,
        requirements: Any = None,
        rank: Callable[[CondorMachine], float] | None = None,
    ) -> JobSubmission:
        """Queue a job; it will run when a matching machine frees up."""
        sub = JobSubmission(
            body=body,
            tag=tag,
            on_complete=on_complete,
            submitted_at=self.env.now,
            requirements=requirements,
            rank=rank,
        )
        self.queue.append(sub)
        self._try_match()
        return sub

    # -- machine callbacks -----------------------------------------------------
    def notify_idle(self, machine: CondorMachine) -> None:
        self._idle[machine.machine_id] = machine
        self._try_match()

    def notify_reclaimed(self, machine: CondorMachine) -> None:
        self._idle.pop(machine.machine_id, None)

    @property
    def n_idle(self) -> int:
        return len(self._idle)

    @property
    def n_queued(self) -> int:
        return len(self.queue)

    # -- matchmaking --------------------------------------------------------
    def _try_match(self) -> None:
        """FIFO over the queue, but jobs whose requirements no idle
        machine satisfies do not block later jobs (Condor semantics)."""
        progress = True
        while progress and self.queue and self._idle:
            progress = False
            # drop stale idle entries up front
            for mid in [m for m, machine in self._idle.items() if not machine.is_idle]:
                del self._idle[mid]
            skipped: list[JobSubmission] = []
            while self.queue and self._idle:
                sub = self.queue.popleft()
                machine = self._pick_machine(sub)
                if machine is None:
                    skipped.append(sub)
                    continue
                del self._idle[machine.machine_id]
                self._start(sub, machine)
                progress = True
            # unmatched jobs keep their queue order ahead of new arrivals
            for sub in reversed(skipped):
                self.queue.appendleft(sub)

    def _pick_machine(self, sub: JobSubmission) -> CondorMachine | None:
        eligible = [
            m for m in self._idle.values() if m.is_idle and sub.matches(m)
        ]
        if not eligible:
            return None
        if sub.rank is None:
            return min(eligible, key=lambda m: m.machine_id)
        # highest rank wins; ties break toward the lowest id
        return min(eligible, key=lambda m: (-sub.rank(m), m.machine_id))

    def _start(self, sub: JobSubmission, machine: CondorMachine) -> None:
        placement = Placement(
            submission=sub, machine_id=machine.machine_id, started_at=self.env.now
        )
        # The body runs as the placement process itself (no wrapper), so
        # machine evictions interrupt the body directly and it can account
        # for partial transfers before returning.  Completion is observed
        # through the process's own completion event.
        proc = self.env.process(
            sub.body(self.env, machine), name=f"job:{sub.tag}@{machine.machine_id}"
        )
        placement.process = proc
        machine.assign(proc)
        self.placements.append(placement)
        self.n_matches += 1
        proc.callbacks.append(lambda _ev: self._on_job_end(placement, machine))

    def _on_job_end(self, placement: Placement, machine: CondorMachine) -> None:
        placement.ended_at = self.env.now
        machine.release(placement.process)
        if placement.submission.on_complete is not None:
            placement.submission.on_complete(placement)
