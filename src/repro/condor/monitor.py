"""The Condor occupancy monitor of Section 4.

A fleet of sensor processes is submitted to the (Vanilla-universe) pool;
each sensor simply occupies whatever machine it is given, waking every
reporting period to record elapsed time, until the owner evicts it.  The
last recorded elapsed value is the occupancy duration, which -- together
with a UTC timestamp -- becomes one observation in the machine's
availability trace.

:func:`collect_traces` runs a whole measurement campaign: it builds a
pool of machines over the DES, keeps ``n_sensors`` monitor jobs queued
at all times (resubmitting each evicted sensor, like Condor's
on-restart semantics), and returns the recorded
:class:`~repro.traces.model.MachinePool`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator

import numpy as np

from repro.condor.machine import CondorMachine
from repro.condor.scheduler import CondorScheduler
from repro.distributions.base import AvailabilityDistribution
from repro.engine.core import Environment, Interrupt
from repro.traces.model import AvailabilityTrace, MachinePool

__all__ = ["OccupancyRecorder", "collect_traces", "make_monitor_job"]


@dataclass
class OccupancyRecorder:
    """Accumulates (timestamp, occupancy duration, censored) per machine."""

    records: dict[str, list[tuple[float, float, bool]]] = field(default_factory=dict)

    def record(
        self, machine_id: str, started_at: float, duration: float, *, censored: bool = False
    ) -> None:
        self.records.setdefault(machine_id, []).append((started_at, duration, censored))

    def to_pool(self, *, name: str = "condor-monitor", min_observations: int = 1) -> MachinePool:
        traces = []
        for machine_id, rows in sorted(self.records.items()):
            if len(rows) < min_observations:
                continue
            rows.sort()
            timestamps = np.asarray([r[0] for r in rows])
            durations = np.asarray([r[1] for r in rows])
            censored = np.asarray([r[2] for r in rows], dtype=bool)
            traces.append(
                AvailabilityTrace(
                    machine_id=machine_id,
                    durations=durations,
                    timestamps=timestamps,
                    censored=censored if censored.any() else None,
                    meta={"source": "occupancy-monitor"},
                )
            )
        return MachinePool(traces=tuple(traces), name=name)


def make_monitor_job(recorder: OccupancyRecorder, *, report_period: float = 60.0):
    """A sensor-job body: occupy the machine until evicted, then record.

    The real sensor wakes every ``report_period`` seconds to refresh its
    elapsed-time report; since the eviction interrupt already yields the
    exact occupancy, the sensor here blocks on a never-firing event and
    the number of reports is derived arithmetically -- a semantically
    identical but O(1)-event implementation (18 simulated months of
    60-second wake-ups would otherwise dominate the event queue).
    """

    def body(env: Environment, machine: CondorMachine) -> Generator:
        started = env.now
        try:
            yield env.event()  # sleep until evicted
            raise AssertionError("monitor sleep event must never fire")
        except Interrupt:
            recorder.record(machine.machine_id, started, env.now - started)
            return "evicted"

    return body


def collect_traces(
    ground_truths: dict[str, AvailabilityDistribution],
    *,
    horizon: float,
    rng: np.random.Generator,
    n_sensors: int | None = None,
    mean_owner_gap: float = 1800.0,
    report_period: float = 60.0,
    min_observations: int = 1,
    censor_at_horizon: bool = False,
) -> MachinePool:
    """Run a full measurement campaign over a synthetic desktop fleet.

    Parameters
    ----------
    ground_truths:
        ``machine_id -> availability distribution`` for each desktop.
    horizon:
        Campaign length in simulated seconds (the paper ran 18 months).
    n_sensors:
        Number of concurrently submitted sensor processes; defaults to
        one per machine so every idle machine is occupied, making
        occupancy durations equal availability durations.
    censor_at_horizon:
        If ``True``, sensors still running when the campaign ends record
        their elapsed occupancy as a *right-censored* observation (the
        machine was still available).  Traces then carry a ``censored``
        mask that the fitting layer honours -- this is Section 5.3's
        censoring effect made explicit.  ``False`` (the paper's trace
        format) simply drops the in-flight observations.
    """
    env = Environment()
    scheduler = CondorScheduler(env)
    recorder = OccupancyRecorder()
    for machine_id, dist in sorted(ground_truths.items()):
        CondorMachine.from_distribution(
            env,
            machine_id,
            dist,
            rng,
            mean_owner_gap=mean_owner_gap,
            scheduler=scheduler,
        )
    body = make_monitor_job(recorder, report_period=report_period)

    def resubmit(placement) -> None:
        scheduler.submit(body, tag="monitor", on_complete=resubmit)

    count = n_sensors if n_sensors is not None else len(ground_truths)
    for _ in range(count):
        scheduler.submit(body, tag="monitor", on_complete=resubmit)
    env.run(until=horizon)
    if censor_at_horizon:
        for placement in scheduler.placements:
            if placement.ended_at is None:
                recorder.record(
                    placement.machine_id,
                    placement.started_at,
                    horizon - placement.started_at,
                    censored=True,
                )
    return recorder.to_pool(min_observations=min_observations)
