"""Post-mortem persistence of checkpoint-manager logs.

"The manager keeps a log file for each test process from which the
overhead ratio can be calculated post facto" -- this module is that log
file: placement logs serialise to a versioned JSON document and load
back into :class:`~repro.condor.manager.PlacementLog` objects, so the
validation experiment (and any offline analysis) can run long after the
simulated world is gone.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.condor.manager import PlacementLog

__all__ = ["load_placement_logs", "save_placement_logs"]

_FORMAT_VERSION = 1


def _log_to_dict(log: PlacementLog) -> dict:
    return {
        "model_name": log.model_name,
        "machine_id": log.machine_id,
        "started_at": log.started_at,
        "ended_at": log.ended_at,
        "censored": log.censored,
        "committed_work": log.committed_work,
        "lost_work": log.lost_work,
        "recovery_overhead": log.recovery_overhead,
        "checkpoint_overhead": log.checkpoint_overhead,
        "mb_transferred": log.mb_transferred,
        "n_checkpoints_completed": log.n_checkpoints_completed,
        "n_checkpoints_attempted": log.n_checkpoints_attempted,
        "recovery_completed": log.recovery_completed,
        "n_heartbeats": log.n_heartbeats,
        "decisions": [list(d) for d in log.decisions],
        "eviction_uptime": log.eviction_uptime,
    }


def _log_from_dict(doc: dict) -> PlacementLog:
    log = PlacementLog(
        model_name=doc["model_name"],
        machine_id=doc["machine_id"],
        started_at=doc["started_at"],
        ended_at=doc["ended_at"],
        censored=doc.get("censored", False),
        committed_work=doc["committed_work"],
        lost_work=doc["lost_work"],
        recovery_overhead=doc["recovery_overhead"],
        checkpoint_overhead=doc["checkpoint_overhead"],
        mb_transferred=doc["mb_transferred"],
        n_checkpoints_completed=doc["n_checkpoints_completed"],
        n_checkpoints_attempted=doc["n_checkpoints_attempted"],
        recovery_completed=doc["recovery_completed"],
        n_heartbeats=doc["n_heartbeats"],
        decisions=[tuple(d) for d in doc["decisions"]],
        eviction_uptime=doc.get("eviction_uptime"),
    )
    return log


def save_placement_logs(logs, path: str | Path) -> None:
    """Serialise placement logs to a JSON document."""
    doc = {
        "format_version": _FORMAT_VERSION,
        "logs": [_log_to_dict(log) for log in logs],
    }
    Path(path).write_text(json.dumps(doc))


def load_placement_logs(path: str | Path) -> list[PlacementLog]:
    """Load placement logs saved by :func:`save_placement_logs`."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported log format version: {version!r}")
    return [_log_from_dict(d) for d in doc["logs"]]
