"""The live-Condor experiment of Section 5.2 (Tables 4 and 5).

End-to-end protocol over the DES substrate:

1. synthesise a desktop fleet (per-machine ground-truth availability);
2. play the role of the 18-month measurement history: sample a training
   set per machine and fit the four candidate models (the checkpoint
   manager "sends the test process a message indicating which model to
   use ... and the parameters for that model");
3. stand up the checkpoint manager behind a shared campus or wide-area
   link, submit a rotating stream of instrumented test processes to the
   Condor scheduler, and run for the experiment horizon (2 days in the
   paper);
4. aggregate the manager's logs per model: average efficiency, total
   occupied time, megabytes used, megabytes/hour and sample size --
   exactly the columns of Tables 4 and 5.

Placements still running at the horizon are right-censored and excluded
from the aggregates, the same discrepancy source Section 5.3 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.condor.machine import CondorMachine
from repro.condor.manager import CheckpointManager, ModelAggregate, PlacementLog
from repro.condor.scheduler import CondorScheduler
from repro.condor.testprocess import make_test_process
from repro.core.planner import CheckpointPlanner
from repro.distributions.fitting import MODEL_NAMES, fit_model
from repro.engine.core import Environment
from repro.network.bandwidth import BandwidthModel, campus_link, wan_link
from repro.network.forecaster import default_ensemble
from repro.network.link import SharedLink
from repro.obs.metrics import active as _metrics
from repro.traces.synthetic import SyntheticPoolConfig, _draw_ground_truth

__all__ = ["LiveExperimentConfig", "LiveExperimentResult", "run_live_experiment"]


@dataclass(frozen=True)
class LiveExperimentConfig:
    """Knobs for one live run (defaults sized for a laptop)."""

    horizon: float = 2 * 86400.0  # the paper's 2-day experimental period
    n_machines: int = 48
    n_concurrent_jobs: int = 16
    checkpoint_size_mb: float = 500.0
    models: tuple[str, ...] = MODEL_NAMES
    n_train: int = 25
    mean_owner_gap: float = 1800.0
    #: "campus" (Table 4) or "wan" (Table 5)
    link: str = "campus"
    #: multiplier on the link's mean bandwidth, calibrated so the
    #: *measured* mean transfer cost under contention matches the paper's
    #: observed averages (~110 s campus, ~475 s WAN) despite several test
    #: processes sharing the link concurrently; ``None`` picks the
    #: calibrated default per link (2.5 campus, 4.0 WAN)
    bandwidth_scale: float | None = None
    seed: int = 54  # Table 4/5 vintage
    #: smooth cost measurements with the NWS-style ensemble instead of
    #: the paper's raw last measurement
    use_forecaster: bool = False
    #: desktop memory sizes (MB) and their frequencies in the fleet
    memory_choices: tuple[int, ...] = (256, 512, 1024, 2048)
    memory_weights: tuple[float, ...] = (0.15, 0.45, 0.30, 0.10)
    #: test processes require at least this much memory ("the Condor
    #: machines we used had all had at least 512 megabytes of memory");
    #: set to 0 to disable the requirement
    require_memory_mb: float = 512.0
    #: fixed connection delay per transfer (the paper's footnote asserts
    #: it is insignificant; the latency ablation verifies that)
    request_latency: float = 0.0
    pool_config: SyntheticPoolConfig = field(default_factory=SyntheticPoolConfig)

    def __post_init__(self) -> None:
        if self.link not in ("campus", "wan"):
            raise ValueError(f"link must be 'campus' or 'wan', got {self.link!r}")
        if self.horizon <= 0 or self.n_machines <= 0 or self.n_concurrent_jobs <= 0:
            raise ValueError("horizon, machines and concurrency must be positive")


@dataclass
class LiveExperimentResult:
    """Everything the analysis layer needs from one live run."""

    config: LiveExperimentConfig
    aggregates: dict[str, ModelAggregate]
    logs: list[PlacementLog]
    #: per-machine ground-truth availability durations actually realised
    realized_durations: dict[str, list[float]]
    #: average measured transfer cost across all completed transfers
    mean_transfer_cost: float
    #: the fitted per-(machine, model) planners the test processes used;
    #: the validation experiment replays them through the trace simulator
    planners: dict[str, dict[str, CheckpointPlanner]] = field(default_factory=dict)
    #: each machine's advertised ClassAd-lite attributes
    machine_attributes: dict[str, dict] = field(default_factory=dict)

    def aggregate(self, model_name: str) -> ModelAggregate:
        return self.aggregates[model_name]


def _make_link(config: LiveExperimentConfig, rng: np.random.Generator) -> BandwidthModel:
    model = campus_link(rng) if config.link == "campus" else wan_link(rng)
    scale = config.bandwidth_scale
    if scale is None:
        scale = 2.5 if config.link == "campus" else 4.0
    model.mean_mbps *= scale
    return model


def run_live_experiment(config: LiveExperimentConfig | None = None) -> LiveExperimentResult:
    """Run the full Table 4/5 protocol; deterministic under the seed."""
    if config is None:
        config = LiveExperimentConfig()
    rng = np.random.default_rng(config.seed)

    # --- the desktop fleet and its measurement history ------------------
    ground_truths = {}
    planners: dict[str, dict[str, CheckpointPlanner]] = {}
    for i in range(config.n_machines):
        machine_id = f"desktop-{i:04d}"
        gt = _draw_ground_truth(config.pool_config, rng)
        ground_truths[machine_id] = gt
        history = np.asarray(gt.sample(config.n_train, rng), dtype=np.float64)
        # construct planners directly so model_name distinguishes the 2-
        # and 3-phase hyperexponentials (the family objects do not)
        planners[machine_id] = {
            m: CheckpointPlanner(distribution=fit_model(m, history, rng=rng), model_name=m)
            for m in config.models
        }

    # --- the DES world ----------------------------------------------------
    env = Environment()
    link = SharedLink(
        env,
        _make_link(config, rng),
        name=config.link,
        request_latency=config.request_latency,
    )
    manager = CheckpointManager(env, link)
    scheduler = CondorScheduler(env)
    memory_weights = np.asarray(config.memory_weights, dtype=np.float64)
    memory_weights = memory_weights / memory_weights.sum()
    machines = {
        machine_id: CondorMachine.from_distribution(
            env,
            machine_id,
            dist,
            rng,
            mean_owner_gap=config.mean_owner_gap,
            scheduler=scheduler,
            attributes={
                "memory_mb": int(
                    rng.choice(np.asarray(config.memory_choices), p=memory_weights)
                )
            },
        )
        for machine_id, dist in ground_truths.items()
    }

    def make_model_body(model_name: str):
        def body(env_, machine):
            planner = planners[machine.machine_id][model_name]
            inner = make_test_process(
                manager,
                planner,
                checkpoint_size_mb=config.checkpoint_size_mb,
                forecaster=default_ensemble() if config.use_forecaster else None,
            )
            result = yield from inner(env_, machine)
            return result

        return body

    # rotate models across the submission stream so sample sizes stay
    # balanced (the paper reports 81-89 placements per model)
    bodies = {m: make_model_body(m) for m in config.models}
    rotation = {"index": 0}

    requirements = (
        {"memory_mb": config.require_memory_mb} if config.require_memory_mb > 0 else None
    )

    def submit_next(_placement=None) -> None:
        model = config.models[rotation["index"] % len(config.models)]
        rotation["index"] += 1
        scheduler.submit(
            bodies[model], tag=model, on_complete=submit_next, requirements=requirements
        )

    for _ in range(config.n_concurrent_jobs):
        submit_next()
    env.run(until=config.horizon)
    # placements still running at the horizon are right-censored; flag
    # them now, before generator finalisation can close their logs
    n_censored = manager.censor_open_logs()

    reg = _metrics()
    if reg is not None:
        reg.set_gauge("live.machines", config.n_machines)
        reg.set_gauge("live.concurrent_jobs", config.n_concurrent_jobs)
        reg.inc("live.placements", len(manager.logs))
        reg.inc("live.placements.censored", n_censored)
        reg.inc("live.link_mb_sent", link.total_mb_sent)

    aggregates = {m: manager.aggregate(m) for m in config.models}
    completed_transfers = [
        cost for log in manager.logs for (_, _, cost) in log.decisions
    ]
    mean_cost = float(np.mean(completed_transfers)) if completed_transfers else 0.0
    return LiveExperimentResult(
        config=config,
        aggregates=aggregates,
        logs=list(manager.logs),
        realized_durations={
            mid: list(m.observed_durations) for mid, m in machines.items()
        },
        mean_transfer_cost=mean_cost,
        planners=planners,
        machine_attributes={mid: dict(m.attributes) for mid, m in machines.items()},
    )
