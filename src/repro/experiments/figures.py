"""Terminal-friendly figure rendering (Figures 3 and 4).

The paper's figures are line charts of a metric vs checkpoint duration,
one series per model.  For a dependency-free artefact we render ASCII
charts: good enough to see the orderings and crossovers that constitute
the result, and embeddable in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AsciiFigure", "Series"]

#: per-model plotting glyphs (paper order)
_GLYPHS = "ew23abcdefgh"


@dataclass(frozen=True)
class Series:
    """One line: model label plus (x, y) points."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y) or not self.x:
            raise ValueError(f"series {self.label!r} needs matching non-empty x/y")


class AsciiFigure:
    """A fixed-grid ASCII line chart."""

    def __init__(
        self,
        title: str,
        *,
        xlabel: str,
        ylabel: str,
        width: int = 72,
        height: int = 20,
    ) -> None:
        if width < 16 or height < 6:
            raise ValueError("figure too small to render")
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.series: list[Series] = []

    def add_series(self, label: str, x, y) -> None:
        self.series.append(
            Series(label=label, x=tuple(float(v) for v in x), y=tuple(float(v) for v in y))
        )

    def render(self) -> str:
        if not self.series:
            raise ValueError("no series to render")
        xs = np.concatenate([s.x for s in self.series])
        ys = np.concatenate([s.y for s in self.series])
        x_lo, x_hi = float(xs.min()), float(xs.max())
        y_lo, y_hi = float(ys.min()), float(ys.max())
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        # pad the y range slightly so extremes are visible
        pad = 0.05 * (y_hi - y_lo)
        y_lo -= pad
        y_hi += pad
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_col(x: float) -> int:
            return int(round((x - x_lo) / (x_hi - x_lo) * (self.width - 1)))

        def to_row(y: float) -> int:
            frac = (y - y_lo) / (y_hi - y_lo)
            return int(round((1.0 - frac) * (self.height - 1)))

        for si, s in enumerate(self.series):
            glyph = _GLYPHS[si % len(_GLYPHS)]
            # linear interpolation along segments for a connected look
            for (x0, y0), (x1, y1) in zip(zip(s.x, s.y), zip(s.x[1:], s.y[1:])):
                steps = max(abs(to_col(x1) - to_col(x0)), 1)
                for k in range(steps + 1):
                    t = k / steps
                    col = to_col(x0 + t * (x1 - x0))
                    row = to_row(y0 + t * (y1 - y0))
                    grid[row][col] = glyph
            # series markers at the data points take precedence
            for x, y in zip(s.x, s.y):
                grid[to_row(y)][to_col(x)] = glyph

        lines = [self.title]
        for i, row in enumerate(grid):
            y_val = y_hi - (y_hi - y_lo) * i / (self.height - 1)
            prefix = f"{y_val:10.3g} |"
            lines.append(prefix + "".join(row))
        lines.append(" " * 11 + "+" + "-" * self.width)
        lines.append(
            " " * 12 + f"{x_lo:<12.5g}{self.xlabel:^{max(self.width - 24, 0)}}{x_hi:>12.5g}"
        )
        legend = "   ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]} = {s.label}" for i, s in enumerate(self.series)
        )
        lines.append(f"  y: {self.ylabel}   [{legend}]")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
