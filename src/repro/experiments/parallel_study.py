"""Extension: the parallel-workload collision study (paper's future work).

The conclusion of the paper argues that for a *parallel* job -- many
ranks checkpointing over the same shared network -- the bandwidth
savings of the heavy-tailed models should translate into an *efficiency*
advantage, because colliding checkpoints lengthen every transfer.  The
paper leaves this as future work; this module runs the experiment.

Protocol: for each availability model and each workload width ``W``,
run the live DES with ``W`` concurrent test processes, all steered by
that one model, on a fixed-capacity campus link (the default calibration
is *not* rescaled with concurrency here -- contention is the object of
study).  We report, per (model, W):

* the time-weighted application efficiency,
* the measured mean transfer cost (which inflates with collisions),
* megabytes per hour.

Expected shape: every model's measured transfer cost grows with ``W``;
the exponential -- which checkpoints most often -- suffers the largest
cost inflation, so the efficiency gap between it and the 2-phase
hyperexponential widens as ``W`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.condor.live import LiveExperimentConfig, run_live_experiment
from repro.distributions.fitting import MODEL_NAMES
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable

__all__ = ["ParallelStudyCell", "ParallelStudyResult", "run_parallel_study"]


@dataclass(frozen=True)
class ParallelStudyCell:
    """One (model, width) measurement."""

    model_name: str
    width: int
    efficiency: float
    mean_transfer_cost: float
    megabytes_per_hour: float
    sample_size: int


@dataclass(frozen=True)
class ParallelStudyResult:
    """The full sweep over models and workload widths."""

    cells: dict[tuple[str, int], ParallelStudyCell]
    widths: tuple[int, ...]
    models: tuple[str, ...]

    def cell(self, model: str, width: int) -> ParallelStudyCell:
        return self.cells[(model, width)]

    def table(self) -> PaperTable:
        table = PaperTable(
            title=(
                "Extension — parallel workload: efficiency (and measured "
                "transfer cost, s) vs number of concurrent ranks"
            ),
            header=["Distribution"] + [f"W={w}" for w in self.widths],
            notes=[
                "fixed-capacity campus link; colliding checkpoints lengthen "
                "every transfer",
                "cells: efficiency (mean measured cost per 500 MB)",
            ],
        )
        for model in self.models:
            row = [MODEL_LABELS.get(model, model)]
            for w in self.widths:
                c = self.cells[(model, w)]
                row.append(f"{c.efficiency:.3f} ({c.mean_transfer_cost:.0f}s)")
            table.add_row(row)
        return table

    def efficiency_gap(self, width: int, *, lean: str = "hyperexp2", heavy: str = "exponential") -> float:
        """Efficiency advantage of the bandwidth-lean model at ``width``."""
        return self.cells[(lean, width)].efficiency - self.cells[(heavy, width)].efficiency


def run_parallel_study(
    *,
    widths: tuple[int, ...] = (2, 8, 24),
    models: tuple[str, ...] = MODEL_NAMES,
    horizon: float = 0.5 * 86400.0,
    n_machines: int = 32,
    seed: int = 2005,
    base_config: LiveExperimentConfig | None = None,
) -> ParallelStudyResult:
    """Run the collision sweep.

    The link capacity is held fixed (``bandwidth_scale=1``) across
    widths so that wider workloads genuinely contend.
    """
    base = base_config if base_config is not None else LiveExperimentConfig()
    cells: dict[tuple[str, int], ParallelStudyCell] = {}
    for model in models:
        for width in widths:
            config = replace(
                base,
                link="campus",
                bandwidth_scale=1.0,
                horizon=horizon,
                n_machines=n_machines,
                n_concurrent_jobs=width,
                models=(model,),
                seed=seed,  # identical fleet/seed across models and widths
            )
            result = run_live_experiment(config)
            agg = result.aggregates[model]
            costs = [c for log in result.logs for (_, _, c) in log.decisions]
            cells[(model, width)] = ParallelStudyCell(
                model_name=model,
                width=width,
                efficiency=agg.avg_efficiency,
                mean_transfer_cost=float(np.mean(costs)) if costs else 0.0,
                megabytes_per_hour=agg.megabytes_per_hour,
                sample_size=agg.sample_size,
            )
    return ParallelStudyResult(cells=cells, widths=tuple(widths), models=tuple(models))
