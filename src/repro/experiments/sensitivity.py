"""Parameter-sensitivity study (the Section 5.2 concern, quantified).

The paper worries that "if the models we use are sensitive to
inaccuracies in the parameters supplied to them, the simulation results
could be misleading".  This driver measures that sensitivity directly:
perturb each fitted model's parameters by a relative factor, recompute
the schedule, and replay the same trace -- reporting how much the
realised efficiency and network load move per unit of parameter error.

Low sensitivity is what licenses the 25-point training sets of the
paper's protocol (Table 2's "First 25" columns); this study shows the
efficiency surface around the optimum is flat, while the bandwidth
surface is the one that tilts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions import Exponential, Hyperexponential, Weibull
from repro.distributions.base import AvailabilityDistribution
from repro.distributions.fitting import MODEL_NAMES, fit_model
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable
from repro.simulation.accounting import SimulationConfig
from repro.simulation.trace_sim import simulate_trace
from repro.traces.synthetic import paper_reference_trace

__all__ = ["SensitivityResult", "perturb_distribution", "run_sensitivity_study"]


def perturb_distribution(
    dist: AvailabilityDistribution, factor: float
) -> AvailabilityDistribution:
    """Scale the distribution's parameters by ``factor``.

    Rate-like parameters are scaled by ``factor`` and scale-like
    parameters by ``1/factor``, so ``factor > 1`` uniformly means "the
    model believes machines fail faster than they do".  Shapes and
    mixing probabilities are left alone -- they control the *family*
    geometry rather than the time scale.
    """
    if factor <= 0:
        raise ValueError(f"perturbation factor must be positive, got {factor}")
    if isinstance(dist, Exponential):
        return Exponential(dist.lam * factor)
    if isinstance(dist, Weibull):
        return Weibull(shape=dist.shape, scale=dist.scale / factor)
    if isinstance(dist, Hyperexponential):
        return Hyperexponential(dist.probs, dist.rates * factor)
    raise TypeError(f"no perturbation rule for {type(dist).__name__}")


@dataclass(frozen=True)
class SensitivityResult:
    """Efficiency/load under each (model, perturbation factor)."""

    factors: tuple[float, ...]
    efficiency: dict[tuple[str, float], float]
    mb_total: dict[tuple[str, float], float]
    checkpoint_cost: float

    def table(self) -> PaperTable:
        table = PaperTable(
            title=(
                "Sensitivity — realised efficiency (and MB) under "
                "misestimated parameters"
            ),
            header=["Distribution"] + [f"x{f:g}" for f in self.factors],
            notes=[
                "perturbation factor scales the believed failure rate; "
                "x1 is the unperturbed fit",
                f"C = R = {self.checkpoint_cost:.0f} s",
            ],
        )
        for model in sorted({m for (m, _) in self.efficiency}):
            row = [MODEL_LABELS.get(model, model)]
            for f in self.factors:
                row.append(
                    f"{self.efficiency[(model, f)]:.3f} "
                    f"({self.mb_total[(model, f)] / 1000.0:.0f}k)"
                )
            table.add_row(row)
        return table

    def max_efficiency_drop(self, model: str) -> float:
        """Worst efficiency loss vs the unperturbed fit for ``model``."""
        base = self.efficiency[(model, 1.0)]
        return max(
            base - self.efficiency[(model, f)] for f in self.factors
        )


def run_sensitivity_study(
    *,
    factors: tuple[float, ...] = (0.5, 0.8, 1.0, 1.25, 2.0),
    models: tuple[str, ...] = MODEL_NAMES,
    checkpoint_cost: float = 475.0,
    n_points: int = 1200,
    n_train: int = 25,
    seed: int = 11,
) -> SensitivityResult:
    """Perturb fits of the reference trace and replay it.

    ``factors`` must include ``1.0`` (the baseline fit).
    """
    if 1.0 not in factors:
        raise ValueError("factors must include the unperturbed baseline 1.0")
    rng = np.random.default_rng(seed)
    trace = paper_reference_trace(n_points, rng)
    config = SimulationConfig(checkpoint_cost=checkpoint_cost)
    eff: dict[tuple[str, float], float] = {}
    mb: dict[tuple[str, float], float] = {}
    for model in models:
        fit_rng = np.random.default_rng(seed + 1)
        base = fit_model(model, trace.durations[:n_train], rng=fit_rng)
        for f in factors:
            dist = perturb_distribution(base, f)
            res = simulate_trace(
                dist, trace.durations, config, machine_id=trace.machine_id, model_name=model
            )
            eff[(model, f)] = res.efficiency
            mb[(model, f)] = res.mb_total
    return SensitivityResult(
        factors=tuple(factors),
        efficiency=eff,
        mb_total=mb,
        checkpoint_cost=checkpoint_cost,
    )
