"""Experiment drivers: one per table/figure of the paper (see DESIGN.md)."""

from repro.experiments.figures import AsciiFigure, Series
from repro.experiments.format import PaperTable
from repro.experiments.convergence import ConvergenceResult, run_convergence_study
from repro.experiments.fit_study import FitStudyResult, run_fit_study
from repro.experiments.live_study import LiveStudyResult, run_live_study
from repro.experiments.parallel_study import (
    ParallelStudyCell,
    ParallelStudyResult,
    run_parallel_study,
)
from repro.experiments.sensitivity import (
    SensitivityResult,
    perturb_distribution,
    run_sensitivity_study,
)
from repro.experiments.study import (
    PAPER_CHECKPOINT_COSTS,
    SimulationStudy,
    run_simulation_study,
)
from repro.experiments.synthetic_study import SyntheticStudyResult, run_synthetic_study
from repro.experiments.validation import (
    ModelValidation,
    ValidationResult,
    validate_simulation,
)

__all__ = [
    "PAPER_CHECKPOINT_COSTS",
    "AsciiFigure",
    "ConvergenceResult",
    "FitStudyResult",
    "LiveStudyResult",
    "ModelValidation",
    "PaperTable",
    "ParallelStudyCell",
    "ParallelStudyResult",
    "SensitivityResult",
    "Series",
    "SimulationStudy",
    "SyntheticStudyResult",
    "ValidationResult",
    "perturb_distribution",
    "run_convergence_study",
    "run_fit_study",
    "run_live_study",
    "run_parallel_study",
    "run_sensitivity_study",
    "run_simulation_study",
    "run_synthetic_study",
    "validate_simulation",
]
