"""Tables 4 and 5 -- the live-Condor (DES) experiment drivers.

Table 4 places the checkpoint manager on the campus network (average
500 MB transfer ~ 110 s); Table 5 places it across the wide area
(~475 s).  Everything else -- fleet, scheduler, model rotation,
2-day horizon -- is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.condor.live import LiveExperimentConfig, LiveExperimentResult, run_live_experiment
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable

__all__ = ["LiveStudyResult", "run_live_study"]


@dataclass(frozen=True)
class LiveStudyResult:
    """One live table (4 or 5) plus its raw experiment output."""

    table_number: int
    experiment: LiveExperimentResult

    def table(self) -> PaperTable:
        location = (
            "campus network" if self.experiment.config.link == "campus" else "wide area"
        )
        table = PaperTable(
            title=(
                f"Table {self.table_number} — live Condor emulation, "
                f"checkpoint manager on the {location}"
            ),
            header=["Distribution", "Avg.", "Total Time", "Megabytes Used", "Megabytes/Hour", "Sample Size"],
            notes=[
                f"mean measured transfer cost: "
                f"{self.experiment.mean_transfer_cost:.0f} s per "
                f"{self.experiment.config.checkpoint_size_mb:.0f} MB",
                f"horizon: {self.experiment.config.horizon / 86400.0:.1f} simulated days, "
                f"{self.experiment.config.n_machines} machines",
            ],
        )
        for model in self.experiment.config.models:
            agg = self.experiment.aggregates[model]
            table.add_row(
                [
                    MODEL_LABELS.get(model, model),
                    f"{agg.avg_efficiency:.3f}",
                    f"{agg.total_time:.0f}",
                    f"{agg.megabytes_used:.0f}",
                    f"{agg.megabytes_per_hour:.0f}",
                    f"{agg.sample_size}",
                ]
            )
        return table


def run_live_study(
    location: str = "campus",
    *,
    config: LiveExperimentConfig | None = None,
    **overrides,
) -> LiveStudyResult:
    """Run Table 4 (``location="campus"``) or Table 5 (``"wan"``).

    Extra keyword arguments override :class:`LiveExperimentConfig`
    fields (``horizon=...``, ``n_machines=...``, ``seed=...``).
    """
    if location not in ("campus", "wan"):
        raise ValueError(f"location must be 'campus' or 'wan', got {location!r}")
    base = config if config is not None else LiveExperimentConfig()
    cfg = replace(base, link=location, **overrides)
    result = run_live_experiment(cfg)
    return LiveStudyResult(
        table_number=4 if location == "campus" else 5, experiment=result
    )
