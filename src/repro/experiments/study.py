"""The simulation study behind Figures 3/4 and Tables 1/3.

One pool sweep feeds all four artefacts: the efficiency figure/table use
the per-machine ``efficiency`` metric, the bandwidth figure/table the
per-machine ``mb_total`` metric; both tables carry 95 % confidence
intervals and the paper's paired-t significance markers.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.distributions.fitting.select import MODEL_LABELS
from repro.obs.metrics import active as _metrics
from repro.experiments.figures import AsciiFigure
from repro.experiments.format import PaperTable
from repro.simulation.accounting import SimulationConfig
from repro.simulation.runner import PoolSweep, SweepSettings, simulate_pool
from repro.stats.ci import mean_ci
from repro.stats.significance import significance_markers
from repro.traces.model import MachinePool
from repro.traces.synthetic import SyntheticPoolConfig, generate_condor_pool

__all__ = ["SimulationStudy", "run_simulation_study"]

#: the checkpoint durations of Tables 1 and 3
PAPER_CHECKPOINT_COSTS = (50.0, 100.0, 200.0, 250.0, 400.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0)


@dataclass
class SimulationStudy:
    """A completed sweep plus the table/figure constructors."""

    sweep: PoolSweep
    checkpoint_size_mb: float

    # ------------------------------------------------------------------
    def _metric_by_model(self, metric: str) -> dict[str, np.ndarray]:
        return {
            m: self.sweep.metric_matrix(m, metric)
            for m in self.sweep.settings.model_names
        }

    def _table(self, metric: str, title: str, fmt: str, note: str) -> PaperTable:
        data = self._metric_by_model(metric)
        models = list(self.sweep.settings.model_names)
        table = PaperTable(
            title=title,
            header=["CTime"] + [MODEL_LABELS.get(m, m) for m in models],
            notes=[
                note,
                "(markers list models whose value is statistically significantly "
                "smaller; two-sided paired t-test, alpha=0.05)",
            ],
        )
        for j, cost in enumerate(self.sweep.settings.checkpoint_costs):
            samples = {m: data[m][:, j] for m in models}
            markers = significance_markers(samples)
            cells = [f"{cost:.0f}"]
            for m in models:
                ci = mean_ci(samples[m])
                cells.append(
                    f"{ci.mean:{fmt}} ± {ci.half_width:{fmt}}{markers.cell_suffix(m)}"
                )
            table.add_row(cells)
        return table

    def _figure(self, metric: str, title: str, ylabel: str) -> AsciiFigure:
        data = self._metric_by_model(metric)
        fig = AsciiFigure(title, xlabel="checkpoint/recovery duration (s)", ylabel=ylabel)
        costs = self.sweep.settings.checkpoint_costs
        for m in self.sweep.settings.model_names:
            means = data[m].mean(axis=0)
            fig.add_series(MODEL_LABELS.get(m, m), costs, means)
        return fig

    # -- public artefacts -----------------------------------------------
    def efficiency_table(self) -> PaperTable:
        """Table 1: mean efficiency with 95 % CIs and markers."""
        return self._table(
            "efficiency",
            "Table 1 — mean efficiency (95% CI) by model and checkpoint duration",
            ".3f",
            "metric: fraction of availability spent on committed work",
        )

    def bandwidth_table(self) -> PaperTable:
        """Table 3: mean network load (MB) with 95 % CIs and markers."""
        return self._table(
            "mb_total",
            f"Table 3 — mean network load in MB "
            f"({self.checkpoint_size_mb:.0f} MB checkpoints), 95% CI",
            ".0f",
            "metric: megabytes transferred (checkpoints + recoveries)",
        )

    def efficiency_figure(self) -> AsciiFigure:
        """Figure 3: average machine utilisation vs checkpoint duration."""
        return self._figure(
            "efficiency",
            "Figure 3 — average machine utilisation vs checkpoint duration",
            "efficiency",
        )

    def bandwidth_figure(self) -> AsciiFigure:
        """Figure 4: average network load vs checkpoint duration."""
        return self._figure(
            "mb_total",
            "Figure 4 — average network load (MB) vs checkpoint duration",
            "megabytes",
        )

    # -- raw series for tests/benchmarks ---------------------------------
    def mean_series(self, metric: str) -> dict[str, np.ndarray]:
        """model -> mean metric per checkpoint cost."""
        return {m: mat.mean(axis=0) for m, mat in self._metric_by_model(metric).items()}

    def export_series_csv(self, path, metric: str) -> None:
        """Write the figure's series (mean ± 95 % CI per model) as CSV.

        Columns: ``checkpoint_cost`` then, per model, ``<model>_mean``
        and ``<model>_ci95`` -- ready for external plotting tools.
        """
        import csv

        from repro.stats.ci import mean_ci

        data = self._metric_by_model(metric)
        models = list(self.sweep.settings.model_names)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            header = ["checkpoint_cost"]
            for m in models:
                header += [f"{m}_mean", f"{m}_ci95"]
            writer.writerow(header)
            for j, cost in enumerate(self.sweep.settings.checkpoint_costs):
                row: list[float] = [float(cost)]
                for m in models:
                    ci = mean_ci(data[m][:, j])
                    row += [ci.mean, ci.half_width]
                writer.writerow(row)

    def export_raw_csv(self, path, metric: str) -> None:
        """Write the per-(machine, model, cost) metric values as CSV."""
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["machine_id", "model", "checkpoint_cost", metric])
            for r in self.sweep.results:
                writer.writerow(
                    [r.machine_id, r.model_name, r.checkpoint_cost, getattr(r, metric)]
                )


def run_simulation_study(
    pool: MachinePool | None = None,
    *,
    checkpoint_costs=PAPER_CHECKPOINT_COSTS,
    checkpoint_size_mb: float = 500.0,
    n_train: int = 25,
    n_workers: int | None = None,
    pool_config: SyntheticPoolConfig | None = None,
    seed: int | None = None,
) -> SimulationStudy:
    """Run the full Figure 3/4 + Table 1/3 study.

    ``pool=None`` generates the default synthetic Condor pool (optionally
    from ``pool_config``/``seed``).
    """
    if pool is None:
        rng = None if seed is None else np.random.default_rng(seed)
        pool = generate_condor_pool(pool_config, rng)
    settings = SweepSettings(
        checkpoint_costs=tuple(float(c) for c in checkpoint_costs),
        n_train=n_train,
        base_config=SimulationConfig(
            checkpoint_cost=0.0, checkpoint_size_mb=checkpoint_size_mb
        ),
    )
    reg = _metrics()
    timer = reg.timer("experiments.study_seconds") if reg is not None else nullcontext()
    with timer:
        sweep = simulate_pool(pool, settings, n_workers=n_workers)
    return SimulationStudy(sweep=sweep, checkpoint_size_mb=checkpoint_size_mb)
