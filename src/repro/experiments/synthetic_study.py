"""Table 2 -- the controlled synthetic-Weibull experiment.

The paper quantifies the cost of model misspecification by generating a
5000-point trace from a *known* heavy-tailed Weibull (shape 0.43, scale
3409 -- the MLE of a randomly chosen real machine) and replaying it
under schedules computed from

* the four candidate families, each fitted on **all 5000** points and on
  only the **first 25** points, with
* checkpoint costs C = 50 and C = 500.

Because the Weibull-all fit essentially recovers the generator, its
efficiency is the optimum; the interesting quantities are how little the
misspecified fits lose and that 25 points suffice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.fitting import MODEL_NAMES, fit_model
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable
from repro.simulation.accounting import SimulationConfig
from repro.simulation.trace_sim import simulate_trace
from repro.traces.synthetic import paper_reference_trace

__all__ = ["SyntheticStudyResult", "run_synthetic_study"]


@dataclass(frozen=True)
class SyntheticStudyResult:
    """Efficiencies keyed by (model, checkpoint_cost, fit_size_label)."""

    efficiencies: dict[tuple[str, float, str], float]
    n_points: int
    costs: tuple[float, ...]
    fit_sizes: tuple[int, ...]

    def table(self) -> PaperTable:
        """The Table 2 layout: one column per (cost, fit-size) pair."""
        header = ["Distribution"]
        for cost in self.costs:
            for n_fit in self.fit_sizes:
                label = "All" if n_fit >= self.n_points else f"First {n_fit}"
                header.append(f"C={cost:.0f} {label}")
        table = PaperTable(
            title=(
                "Table 2 — application efficiency on a synthetic "
                "Weibull(0.43, 3409) trace"
            ),
            header=header,
            notes=[f"trace length: {self.n_points} availability durations"],
        )
        for model in MODEL_NAMES:
            row = [MODEL_LABELS.get(model, model)]
            for cost in self.costs:
                for n_fit in self.fit_sizes:
                    label = "All" if n_fit >= self.n_points else f"First {n_fit}"
                    row.append(f"{self.efficiencies[(model, cost, label)]:.3f}")
            table.add_row(row)
        return table

    def efficiency(self, model: str, cost: float, fit_label: str) -> float:
        return self.efficiencies[(model, cost, fit_label)]


def run_synthetic_study(
    *,
    n_points: int = 5000,
    costs: tuple[float, ...] = (50.0, 500.0),
    fit_sizes: tuple[int, ...] = (25, -1),
    checkpoint_size_mb: float = 500.0,
    seed: int = 2005,
) -> SyntheticStudyResult:
    """Run the Table 2 protocol.

    ``fit_sizes`` entries of ``-1`` (or >= ``n_points``) mean "fit on the
    whole trace".
    """
    rng = np.random.default_rng(seed)
    trace = paper_reference_trace(n_points, rng)
    durations = trace.durations
    normalized_sizes = tuple(n_points if s < 0 or s >= n_points else s for s in fit_sizes)

    effs: dict[tuple[str, float, str], float] = {}
    for model in MODEL_NAMES:
        for n_fit in normalized_sizes:
            fit_rng = np.random.default_rng(seed + 1)
            dist = fit_model(model, durations[:n_fit], rng=fit_rng)
            label = "All" if n_fit >= n_points else f"First {n_fit}"
            for cost in costs:
                config = SimulationConfig(
                    checkpoint_cost=float(cost), checkpoint_size_mb=checkpoint_size_mb
                )
                result = simulate_trace(
                    dist, durations, config, machine_id=trace.machine_id, model_name=model
                )
                effs[(model, float(cost), label)] = result.efficiency
    return SyntheticStudyResult(
        efficiencies=effs,
        n_points=n_points,
        costs=tuple(float(c) for c in costs),
        fit_sizes=normalized_sizes,
    )
