"""Table rendering shared by all experiment drivers.

Every experiment produces a :class:`PaperTable`: an ordered header plus
rows of pre-formatted cells, rendered as aligned monospace text the way
the paper's tables read.  Keeping formatting in one place lets the CLI,
the examples and EXPERIMENTS.md all print identical artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PaperTable"]


@dataclass
class PaperTable:
    """An aligned text table with a title and optional footnotes."""

    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, cells: list[str]) -> None:
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.header, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.header) + " |")
        lines.append("|" + "|".join("---" for _ in self.header) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
