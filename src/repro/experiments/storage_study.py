"""The storage study: network load under delta/compression/retention.

The paper's Tables 4/5 fix one (checkpoint cost, link) point -- ~110 s
per 500 MB on the campus network -- and compare models by megabytes
moved.  This study holds that point fixed and sweeps the *storage
policy* instead: flat full-image transfers (the paper's pipeline)
against incremental checkpoints with periodic fulls, keep-last-k
retention, dirty-page deltas and compression, across the candidate
availability models.  It answers the question the storage subsystem
exists for: how many of the paper's megabytes were the *schedule's*
fault, and how many the *encoding's*?

Protocol, mirroring the pool sweep: per machine, fit each model to the
training prefix, then replay the whole trace once per (model, policy)
with :func:`simulate_trace`; aggregate means across machines.  Because
every policy replays the same traces under the same fitted model, the
megabyte columns are paired -- differences are pure storage effects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.distributions.fitting import fit_model
from repro.experiments.format import PaperTable
from repro.simulation.accounting import SimulationConfig, SimulationResult
from repro.simulation.trace_sim import simulate_trace
from repro.storage.policy import StoragePolicy
from repro.traces.model import TRAINING_SET_SIZE, MachinePool
from repro.traces.synthetic import SyntheticPoolConfig, generate_condor_pool

__all__ = [
    "DEFAULT_STORAGE_POLICIES",
    "StorageStudyResult",
    "run_storage_study",
]

#: named policies swept by default; ``None`` is the paper's flat-transfer
#: baseline (identical to ``StoragePolicy.full()`` byte-for-byte, but
#: exercising the original non-storage simulator path)
DEFAULT_STORAGE_POLICIES: tuple[tuple[str, StoragePolicy | None], ...] = (
    ("full (paper)", None),
    (
        "inc d=0.10 full@10",
        StoragePolicy(delta_model="fixed", delta_fraction=0.10, full_every_k=10),
    ),
    (
        "inc d=0.30 full@10",
        StoragePolicy(delta_model="fixed", delta_fraction=0.30, full_every_k=10),
    ),
    (
        "inc d=0.10 keep5",
        StoragePolicy(delta_fraction=0.10, full_every_k=50, keep_last_k=5),
    ),
    (
        "inc dirty tau=30m",
        StoragePolicy(delta_model="dirty-page", dirty_tau=1800.0, full_every_k=10),
    ),
    (
        "inc d=0.10 zstd 2x",
        StoragePolicy(
            delta_fraction=0.10,
            full_every_k=10,
            compression_ratio=2.0,
            compression_mb_per_s=200.0,
        ),
    ),
)

#: the campus-link point of Table 4 (~110 s per 500 MB)
CAMPUS_CHECKPOINT_COST = 110.0


@dataclass(frozen=True)
class _Aggregate:
    efficiency: float
    mb_total: float
    mb_per_hour: float
    n_full: float
    n_delta: float
    max_chain: int


@dataclass
class StorageStudyResult:
    """Per-(model, policy) aggregates plus the table constructor."""

    checkpoint_cost: float
    checkpoint_size_mb: float
    model_names: tuple[str, ...]
    policy_names: tuple[str, ...]
    results: dict[tuple[str, str], list[SimulationResult]] = field(default_factory=dict)

    def aggregate(self, model: str, policy: str) -> _Aggregate:
        rows = self.results[(model, policy)]
        return _Aggregate(
            efficiency=float(np.mean([r.efficiency for r in rows])),
            mb_total=float(np.mean([r.mb_total for r in rows])),
            mb_per_hour=float(np.mean([r.mb_per_hour for r in rows])),
            n_full=float(np.mean([r.n_full_checkpoints for r in rows])),
            n_delta=float(np.mean([r.n_delta_checkpoints for r in rows])),
            max_chain=int(max(r.max_restore_chain_len for r in rows)),
        )

    def table(self) -> PaperTable:
        table = PaperTable(
            title=(
                f"Storage study — network load by checkpoint storage policy "
                f"(C = {self.checkpoint_cost:.0f} s per "
                f"{self.checkpoint_size_mb:.0f} MB image)"
            ),
            header=[
                "Model",
                "Policy",
                "Efficiency",
                "MB total",
                "MB/Hour",
                "vs full",
                "Max chain",
            ],
            notes=[
                "same traces and fitted models in every row block: megabyte",
                "differences are pure storage-policy effects; 'vs full' is the",
                "network-load change relative to the paper's flat transfers",
            ],
        )
        for model in self.model_names:
            base = self.aggregate(model, self.policy_names[0])
            for policy in self.policy_names:
                agg = self.aggregate(model, policy)
                saved = (
                    (agg.mb_total - base.mb_total) / base.mb_total * 100.0
                    if base.mb_total > 0
                    else 0.0
                )
                table.add_row(
                    [
                        model,
                        policy,
                        f"{agg.efficiency:.3f}",
                        f"{agg.mb_total:.0f}",
                        f"{agg.mb_per_hour:.0f}",
                        f"{saved:+.1f}%",
                        f"{agg.max_chain}" if policy != self.policy_names[0] else "1",
                    ]
                )
        return table


def run_storage_study(
    pool: MachinePool | None = None,
    *,
    checkpoint_cost: float = CAMPUS_CHECKPOINT_COST,
    checkpoint_size_mb: float = 500.0,
    model_names: tuple[str, ...] = ("exponential", "weibull", "hyperexp2"),
    policies: tuple[tuple[str, StoragePolicy | None], ...] = DEFAULT_STORAGE_POLICIES,
    n_train: int = TRAINING_SET_SIZE,
    pool_config: SyntheticPoolConfig | None = None,
    seed: int | None = None,
    em_seed: int = 424242,
) -> StorageStudyResult:
    """Sweep storage policies at one (cost, link) point of Table 4/5."""
    if not policies:
        raise ValueError("at least one storage policy is required")
    if pool is None:
        rng = None if seed is None else np.random.default_rng(seed)
        pool = generate_condor_pool(pool_config, rng)
    study = StorageStudyResult(
        checkpoint_cost=float(checkpoint_cost),
        checkpoint_size_mb=float(checkpoint_size_mb),
        model_names=tuple(model_names),
        policy_names=tuple(name for name, _ in policies),
    )
    for trace in pool:
        train, _test = trace.split(n_train)
        machine_key = zlib.crc32(trace.machine_id.encode("utf-8"))
        rng = np.random.default_rng(np.random.SeedSequence([em_seed, machine_key]))
        for model in study.model_names:
            dist = fit_model(model, train, rng=rng)
            for policy_name, policy in policies:
                config = SimulationConfig(
                    checkpoint_cost=float(checkpoint_cost),
                    checkpoint_size_mb=float(checkpoint_size_mb),
                    storage=policy,
                )
                result = simulate_trace(
                    dist,
                    trace.durations,
                    config,
                    machine_id=trace.machine_id,
                    model_name=model,
                )
                study.results.setdefault((model, policy_name), []).append(result)
    return study
