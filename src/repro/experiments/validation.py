"""Section 5.3 -- validating the simulation against the live system.

The paper validates its trace-driven simulator by replaying post-mortem
data recorded during the live Condor runs and comparing the resulting
efficiencies, attributing the residual differences to (a) right
censoring by the short experimental window and (b) the Markov model's
constant ``C``/``R`` versus the variable measured transfer costs.

We reproduce that protocol exactly: every completed live placement is
replayed through :func:`repro.simulation.trace_sim.simulate_trace` as a
single availability interval of the observed occupancy length, using the
*same* fitted planner the live process used but the *constant* mean
measured transfer cost.  The per-model comparison quantifies the
simulation/empirical gap; the censored-placement count quantifies source
(a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.live import LiveExperimentResult
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable
from repro.simulation.accounting import SimulationConfig
from repro.simulation.trace_sim import simulate_trace

__all__ = ["ModelValidation", "ValidationResult", "validate_simulation"]


@dataclass(frozen=True)
class ModelValidation:
    """Live-vs-simulated comparison for one model."""

    model_name: str
    live_efficiency: float
    simulated_efficiency: float
    live_mb: float
    simulated_mb: float
    n_placements: int

    @property
    def efficiency_gap(self) -> float:
        return self.live_efficiency - self.simulated_efficiency

    @property
    def mb_relative_gap(self) -> float:
        if self.simulated_mb == 0.0:
            return 0.0
        return (self.live_mb - self.simulated_mb) / self.simulated_mb


@dataclass(frozen=True)
class ValidationResult:
    """All per-model comparisons plus censoring statistics."""

    per_model: dict[str, ModelValidation]
    n_censored_placements: int
    mean_transfer_cost: float

    def table(self) -> PaperTable:
        table = PaperTable(
            title="Section 5.3 — simulation validated against the live runs",
            header=[
                "Distribution",
                "Live eff.",
                "Sim eff.",
                "Gap",
                "Live MB",
                "Sim MB",
                "Placements",
            ],
            notes=[
                f"replay used constant C = R = {self.mean_transfer_cost:.0f} s "
                "(the live system's measured mean)",
                f"{self.n_censored_placements} placements right-censored by the "
                "horizon and excluded (the paper's 2-day-window effect)",
            ],
        )
        for model, v in self.per_model.items():
            table.add_row(
                [
                    MODEL_LABELS.get(model, model),
                    f"{v.live_efficiency:.3f}",
                    f"{v.simulated_efficiency:.3f}",
                    f"{v.efficiency_gap:+.3f}",
                    f"{v.live_mb:.0f}",
                    f"{v.simulated_mb:.0f}",
                    f"{v.n_placements}",
                ]
            )
        return table

    def max_efficiency_gap(self) -> float:
        return max(abs(v.efficiency_gap) for v in self.per_model.values())


def validate_simulation(experiment: LiveExperimentResult) -> ValidationResult:
    """Replay each live placement through the trace simulator and compare."""
    cost = max(experiment.mean_transfer_cost, 1.0)
    config = SimulationConfig(
        checkpoint_cost=cost,
        checkpoint_size_mb=experiment.config.checkpoint_size_mb,
    )
    per_model: dict[str, ModelValidation] = {}
    censored = sum(
        1 for log in experiment.logs if log.censored or log.ended_at is None
    )
    for model in experiment.config.models:
        live_time = 0.0
        live_committed = 0.0
        live_mb = 0.0
        sim_time = 0.0
        sim_committed = 0.0
        sim_mb = 0.0
        n = 0
        for log in experiment.logs:
            if log.model_name != model or log.ended_at is None or log.censored:
                continue
            occupancy = log.occupied_time
            if occupancy <= 0.0:
                continue
            planner = experiment.planners[log.machine_id][model]
            sim = simulate_trace(
                planner.distribution,
                [occupancy],
                config,
                machine_id=log.machine_id,
                model_name=model,
            )
            live_time += occupancy
            live_committed += log.committed_work
            live_mb += log.mb_transferred
            sim_time += sim.total_time
            sim_committed += sim.useful_work
            sim_mb += sim.mb_total
            n += 1
        per_model[model] = ModelValidation(
            model_name=model,
            live_efficiency=live_committed / live_time if live_time else 0.0,
            simulated_efficiency=sim_committed / sim_time if sim_time else 0.0,
            live_mb=live_mb,
            simulated_mb=sim_mb,
            n_placements=n,
        )
    return ValidationResult(
        per_model=per_model,
        n_censored_placements=censored,
        mean_transfer_cost=cost,
    )
