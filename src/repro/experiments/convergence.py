"""Convergence diagnostics for efficiency estimates.

Both empirical sections of the paper lean on a convergence argument:
"as the application runs for longer and longer periods, the values will
converge to the same average efficiency."  This driver quantifies that:
replay growing prefixes of each machine's trace and track the running
(cumulative) efficiency per model, yielding the convergence curves and a
simple has-it-settled diagnostic used to size experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.fitting import MODEL_NAMES, fit_model
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.figures import AsciiFigure
from repro.simulation.accounting import SimulationConfig
from repro.simulation.trace_sim import simulate_trace
from repro.traces.model import AvailabilityTrace, MachinePool

__all__ = ["ConvergenceResult", "run_convergence_study"]


@dataclass(frozen=True)
class ConvergenceResult:
    """Running efficiency per model over growing replay lengths."""

    #: replay lengths (number of availability observations)
    lengths: tuple[int, ...]
    #: model -> running pooled efficiency at each length
    curves: dict[str, np.ndarray]
    checkpoint_cost: float

    def figure(self) -> AsciiFigure:
        fig = AsciiFigure(
            "Convergence — pooled efficiency vs replay length",
            xlabel="observations replayed",
            ylabel="efficiency",
        )
        for model, curve in self.curves.items():
            fig.add_series(MODEL_LABELS.get(model, model), self.lengths, curve)
        return fig

    def settled_within(self, tolerance: float) -> bool:
        """Whether every curve's last two points differ by < ``tolerance``."""
        return all(
            abs(curve[-1] - curve[-2]) < tolerance for curve in self.curves.values()
        )

    def final_spread(self) -> float:
        """Across-model spread of the fully-converged efficiencies."""
        finals = [curve[-1] for curve in self.curves.values()]
        return max(finals) - min(finals)


def run_convergence_study(
    pool: MachinePool,
    *,
    checkpoint_cost: float = 110.0,
    model_names: tuple[str, ...] = MODEL_NAMES,
    n_train: int = 25,
    n_points: int = 8,
    em_seed: int = 777,
) -> ConvergenceResult:
    """Replay growing prefixes of every machine's experimental set.

    The pooled efficiency at length ``L`` is total committed work over
    total availability across machines, each replaying its first ``L``
    held-out observations (machines with shorter traces contribute what
    they have).
    """
    if n_points < 2:
        raise ValueError("need at least two lengths to talk about convergence")
    config = SimulationConfig(checkpoint_cost=checkpoint_cost)
    splits: list[tuple[AvailabilityTrace, np.ndarray]] = []
    max_len = 0
    for trace in pool:
        try:
            _, test = trace.split(n_train)
        except ValueError:
            continue
        splits.append((trace, test))
        max_len = max(max_len, test.size)
    if not splits:
        raise ValueError("no machine has enough observations")
    lengths = np.unique(
        np.linspace(2, max_len, n_points).astype(int)
    )
    fits: dict[tuple[str, str], object] = {}
    for i, (trace, _) in enumerate(splits):
        rng = np.random.default_rng([em_seed, i])
        train = trace.durations[:n_train]
        for m in model_names:
            fits[(trace.machine_id, m)] = fit_model(m, train, rng=rng)
    curves: dict[str, list[float]] = {m: [] for m in model_names}
    for L in lengths:
        for m in model_names:
            useful = 0.0
            total = 0.0
            for trace, test in splits:
                prefix = test[: min(L, test.size)]
                res = simulate_trace(
                    fits[(trace.machine_id, m)],
                    prefix,
                    config,
                    machine_id=trace.machine_id,
                    model_name=m,
                )
                useful += res.useful_work
                total += res.total_time
            curves[m].append(useful / total if total > 0 else 0.0)
    return ConvergenceResult(
        lengths=tuple(int(x) for x in lengths),
        curves={m: np.asarray(v) for m, v in curves.items()},
        checkpoint_cost=checkpoint_cost,
    )
