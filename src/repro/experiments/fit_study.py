"""Goodness-of-fit study -- the Section 3.1 claim, quantified.

The paper asserts that "the two distribution families that consistently
fit the data we have gathered most accurately are the Weibull and the
hyperexponential", without printing a table.  This driver produces that
table for any pool: per candidate family, the mean held-out KS distance,
the mean log-likelihood per observation, and the number of machines the
family wins under AIC/BIC -- optionally including the library's extra
heavy-tailed families (lognormal, Pareto).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions import evaluate_fit, fit_model
from repro.distributions.fitting import MODEL_NAMES
from repro.distributions.fitting.select import MODEL_LABELS
from repro.experiments.format import PaperTable
from repro.traces.model import MachinePool

__all__ = ["FitStudyResult", "run_fit_study"]


@dataclass(frozen=True)
class FitStudyResult:
    """Per-family fit quality aggregated over a pool."""

    models: tuple[str, ...]
    mean_ks: dict[str, float]
    mean_loglik_per_obs: dict[str, float]
    aic_wins: dict[str, int]
    bic_wins: dict[str, int]
    n_machines: int

    def table(self) -> PaperTable:
        table = PaperTable(
            title=(
                "Fit study — held-out goodness of fit per family "
                "(the Section 3.1 claim, quantified)"
            ),
            header=["Family", "mean KS", "mean ll/obs", "AIC wins", "BIC wins"],
            notes=[
                f"{self.n_machines} machines; models fitted on the training "
                "prefix, scored on the held-out suffix",
            ],
        )
        for m in self.models:
            table.add_row(
                [
                    MODEL_LABELS.get(m, m),
                    f"{self.mean_ks[m]:.3f}",
                    f"{self.mean_loglik_per_obs[m]:.3f}",
                    f"{self.aic_wins[m]}",
                    f"{self.bic_wins[m]}",
                ]
            )
        return table

    def best_by_mean_ks(self) -> str:
        return min(self.models, key=lambda m: self.mean_ks[m])


def run_fit_study(
    pool: MachinePool,
    *,
    models: tuple[str, ...] = MODEL_NAMES,
    n_train: int = 25,
    em_seed: int = 31415,
) -> FitStudyResult:
    """Fit every candidate family to every machine and score held-out fit."""
    ks_acc: dict[str, list[float]] = {m: [] for m in models}
    ll_acc: dict[str, list[float]] = {m: [] for m in models}
    aic_wins = {m: 0 for m in models}
    bic_wins = {m: 0 for m in models}
    n_machines = 0
    for trace in pool:
        try:
            train, test = trace.split(n_train)
        except ValueError:
            continue
        n_machines += 1
        rng = np.random.default_rng([em_seed, n_machines])
        gofs = {}
        for m in models:
            dist = fit_model(m, train, rng=rng)
            gofs[m] = evaluate_fit(dist, test)
            ks_acc[m].append(gofs[m].ks)
            ll_acc[m].append(gofs[m].log_likelihood / max(len(test), 1))
        aic_wins[min(models, key=lambda m: gofs[m].aic)] += 1
        bic_wins[min(models, key=lambda m: gofs[m].bic)] += 1
    if n_machines == 0:
        raise ValueError("no machine in the pool has enough observations")
    return FitStudyResult(
        models=tuple(models),
        mean_ks={m: float(np.mean(ks_acc[m])) for m in models},
        mean_loglik_per_obs={m: float(np.mean(ll_acc[m])) for m in models},
        aic_wins=aic_wins,
        bic_wins=bic_wins,
        n_machines=n_machines,
    )
