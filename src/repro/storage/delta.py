"""Incremental/delta checkpoint size models.

The paper transfers the full 500 MB memory image at every checkpoint.
Real checkpoint pipelines write *incremental* snapshots: only the pages
dirtied since the previous snapshot travel over the network, and the
full image is re-sent periodically to bound the restore chain.  These
models answer one question -- given ``work_since_last`` seconds of
computation since the previous snapshot, how many megabytes is the
delta?

* :class:`FullDelta` -- the degenerate case: every "delta" is the full
  image (reproduces the paper's flat transfers);
* :class:`FixedFractionDelta` -- a constant working-set fraction of the
  image is dirty regardless of interval length (e.g. an in-place solver
  touching the same arrays every sweep);
* :class:`DirtyPageDelta` -- pages are touched as a Poisson process, so
  the dirty fraction after ``w`` seconds is ``1 - exp(-w / tau)``:
  short intervals produce small deltas, long intervals saturate at the
  full image.  ``tau`` is the time constant at which ~63 % of the image
  has been dirtied.
"""

from __future__ import annotations

import abc
import math

__all__ = ["DeltaSizeModel", "DirtyPageDelta", "FixedFractionDelta", "FullDelta"]


class DeltaSizeModel(abc.ABC):
    """Megabytes of an incremental snapshot, before compression."""

    @abc.abstractmethod
    def delta_mb(self, full_mb: float, work_since_last: float) -> float:
        """Size of the delta written after ``work_since_last`` seconds of
        computation since the previous snapshot of a ``full_mb`` image."""


class FullDelta(DeltaSizeModel):
    """Every snapshot is the full image (the paper's behaviour)."""

    def delta_mb(self, full_mb: float, work_since_last: float) -> float:
        return full_mb


class FixedFractionDelta(DeltaSizeModel):
    """A constant fraction of the image is dirty per interval."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"delta fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)

    def delta_mb(self, full_mb: float, work_since_last: float) -> float:
        return self.fraction * full_mb


class DirtyPageDelta(DeltaSizeModel):
    """Poisson page-touch model: dirty fraction ``1 - exp(-w / tau)``."""

    def __init__(self, tau: float) -> None:
        if tau <= 0:
            raise ValueError(f"dirty-page time constant must be > 0, got {tau}")
        self.tau = float(tau)

    def delta_mb(self, full_mb: float, work_since_last: float) -> float:
        if work_since_last <= 0.0:
            return 0.0
        return full_mb * (1.0 - math.exp(-work_since_last / self.tau))
