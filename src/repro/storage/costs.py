"""Effective checkpoint/recovery costs under a storage policy.

The Markov model (Section 3.5) takes scalar costs ``C`` and ``R``; the
paper identifies them with one flat 500 MB transfer.  Under a storage
policy the per-checkpoint cost varies with the full/delta cadence and
the recovery cost varies with the restore-chain length, so the
optimizer should see the *expected steady-state* costs:

* the configured ``C`` prices a full, uncompressed image, implying a
  link bandwidth ``bw = full_mb / C``;
* one full-to-full cycle holds 1 full + ``k-1`` deltas
  (``k = policy.cycle_length()``), so

      C_eff = E[wire MB per snapshot] / bw + E[compression CPU],

* a failure lands uniformly within the cycle, so the expected restore
  chain is the base full plus ``(k-1)/2`` deltas:

      R_eff = (full_wire + (k-1)/2 * delta_wire) / bw.

Delta sizes depend on the work interval, which itself depends on the
costs -- :func:`effective_costs` therefore takes a ``typical_work``
estimate (the caller seeds it with the base-cost ``T_opt(0)``, one
fixed-point step; the dependence is mild because deltas only modulate
an already-small cost).
"""

from __future__ import annotations

from repro.core.markov import CheckpointCosts
from repro.storage.policy import StoragePolicy

__all__ = ["effective_costs", "implied_bandwidth"]


def implied_bandwidth(full_mb: float, checkpoint_cost: float) -> float:
    """Link bandwidth (MB/s) implied by "``C`` seconds per full image"."""
    if full_mb <= 0 or checkpoint_cost <= 0:
        raise ValueError(
            "implied bandwidth needs a positive image size and checkpoint cost, "
            f"got {full_mb} MB / {checkpoint_cost} s"
        )
    return full_mb / checkpoint_cost


def effective_costs(
    policy: StoragePolicy,
    base: CheckpointCosts,
    full_mb: float,
    *,
    typical_work: float,
) -> CheckpointCosts:
    """Steady-state ``C``/``R`` the optimizer should plan with.

    Degenerates to ``base`` when the policy cannot change anything
    (zero-size images or zero base cost leave no bandwidth to scale).
    """
    if typical_work < 0:
        raise ValueError(f"typical work must be >= 0, got {typical_work}")
    if full_mb <= 0 or base.checkpoint <= 0:
        return base
    bw = implied_bandwidth(full_mb, base.checkpoint)
    compressor = policy.make_compressor()
    delta_model = policy.make_delta_model()
    k = policy.cycle_length()

    full_tr = compressor.compress(full_mb)
    delta_raw = min(delta_model.delta_mb(full_mb, typical_work), full_mb)
    delta_tr = compressor.compress(delta_raw)

    mean_wire = (full_tr.wire_mb + (k - 1) * delta_tr.wire_mb) / k
    mean_cpu = (full_tr.cpu_seconds + (k - 1) * delta_tr.cpu_seconds) / k
    c_eff = mean_wire / bw + mean_cpu

    chain_wire = full_tr.wire_mb + 0.5 * (k - 1) * delta_tr.wire_mb
    r_eff = chain_wire / bw
    return CheckpointCosts(checkpoint=c_eff, recovery=r_eff, latency=base.latency)
