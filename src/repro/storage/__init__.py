"""Checkpoint storage subsystem: deltas, compression, retention.

The paper models every checkpoint as one flat ``checkpoint_size_mb``
transfer, so the only lever on network load is the schedule.  This
package attacks the byte count directly, the way production checkpoint
pipelines do:

* :mod:`repro.storage.delta` -- incremental snapshot sizes as a
  function of work done since the last snapshot;
* :mod:`repro.storage.compression` -- constant-ratio compression with a
  CPU-time cost that inflates the effective ``C``;
* :mod:`repro.storage.policy` -- the frozen :class:`StoragePolicy`
  value object that ``SimulationConfig.storage`` carries;
* :mod:`repro.storage.store` -- the server-side
  :class:`CheckpointStore`: committed snapshots, restore chains,
  keep-last-k / periodic-full retention and GC;
* :mod:`repro.storage.costs` -- the expected steady-state ``C``/``R``
  fed back into the Markov/golden-section optimizer.

For convenience the *sizes* of the state being checkpointed (the
:mod:`repro.workload` models) are re-exported here, so storage-aware
code has one import for "how big is the state" and "how is it stored".
"""

from repro.storage.compression import CompressedTransfer, Compressor
from repro.storage.costs import effective_costs, implied_bandwidth
from repro.storage.delta import (
    DeltaSizeModel,
    DirtyPageDelta,
    FixedFractionDelta,
    FullDelta,
)
from repro.storage.policy import StoragePolicy
from repro.storage.store import CheckpointStore, PlannedCheckpoint, Snapshot
from repro.workload.sizes import (
    CheckpointSizeModel,
    ConstantSize,
    JitteredSize,
    LinearGrowthSize,
)

__all__ = [
    "CheckpointSizeModel",
    "CheckpointStore",
    "CompressedTransfer",
    "Compressor",
    "ConstantSize",
    "DeltaSizeModel",
    "DirtyPageDelta",
    "FixedFractionDelta",
    "FullDelta",
    "JitteredSize",
    "LinearGrowthSize",
    "PlannedCheckpoint",
    "Snapshot",
    "StoragePolicy",
    "effective_costs",
    "implied_bandwidth",
]
