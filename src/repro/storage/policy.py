"""The declarative storage policy carried by :class:`SimulationConfig`.

A :class:`StoragePolicy` is a frozen, picklable value object -- it rides
inside ``SimulationConfig`` through ``dataclasses.replace`` sweeps and
across ``ProcessPoolExecutor`` workers -- that describes *how* the
checkpoint pipeline stores state:

* which snapshots are full images and which are deltas
  (``mode``/``full_every_k``),
* how delta sizes depend on work done (``delta_model``),
* what the server retains (``keep_last_k`` -- when the active restore
  chain reaches this many snapshots the next checkpoint is promoted to
  a full, so the chain length never exceeds ``keep_last_k``),
* whether snapshots are compressed before transfer
  (``compression_ratio``/``compression_mb_per_s``).

The behavioural pieces (delta model, compressor, store) are built on
demand via :meth:`make_delta_model` / :meth:`make_compressor`; the
policy itself stays pure data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.compression import Compressor
from repro.storage.delta import (
    DeltaSizeModel,
    DirtyPageDelta,
    FixedFractionDelta,
    FullDelta,
)

__all__ = ["StoragePolicy"]

_MODES = ("full", "incremental")
_DELTA_MODELS = ("fixed", "dirty-page")


@dataclass(frozen=True)
class StoragePolicy:
    """How checkpoints are encoded, compressed and retained.

    Attributes
    ----------
    mode:
        ``"incremental"`` interleaves deltas between periodic fulls;
        ``"full"`` reproduces the paper's flat transfers (every
        snapshot is the whole image).
    delta_model:
        ``"fixed"`` (a constant ``delta_fraction`` of the image is
        dirty per interval) or ``"dirty-page"`` (Poisson page touches:
        dirty fraction ``1 - exp(-work/dirty_tau)``).
    delta_fraction:
        Dirty working-set fraction for the ``"fixed"`` model.
    dirty_tau:
        Time constant (seconds) for the ``"dirty-page"`` model.
    full_every_k:
        Every ``k``-th snapshot is a full image (periodic-full
        retention); ``1`` degenerates to ``mode="full"``.
    keep_last_k:
        Server-side retention cap: at most ``k`` snapshots are kept.
        Because the restore chain (base full + following deltas) is the
        only thing retained, the store promotes the next checkpoint to
        a full whenever the chain reaches ``k`` -- so ``keep_last_k``
        also bounds the restore-chain length.  ``None`` disables the
        cap (``full_every_k`` alone bounds the chain).
    compression_ratio:
        Achieved compression ratio (``wire = raw / ratio``); 1 = none.
    compression_mb_per_s:
        Compressor throughput on raw bytes; the implied CPU seconds
        inflate the effective checkpoint cost.  0 = free.
    """

    mode: str = "incremental"
    delta_model: str = "fixed"
    delta_fraction: float = 0.2
    dirty_tau: float = 3600.0
    full_every_k: int = 10
    keep_last_k: int | None = None
    compression_ratio: float = 1.0
    compression_mb_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown storage mode: {self.mode!r} (use {_MODES})")
        if self.delta_model not in _DELTA_MODELS:
            raise ValueError(
                f"unknown delta model: {self.delta_model!r} (use {_DELTA_MODELS})"
            )
        if not 0.0 <= self.delta_fraction <= 1.0:
            raise ValueError(
                f"delta fraction must be in [0, 1], got {self.delta_fraction}"
            )
        if self.dirty_tau <= 0:
            raise ValueError(f"dirty_tau must be > 0, got {self.dirty_tau}")
        if self.full_every_k < 1:
            raise ValueError(f"full_every_k must be >= 1, got {self.full_every_k}")
        if self.keep_last_k is not None and self.keep_last_k < 1:
            raise ValueError(f"keep_last_k must be >= 1, got {self.keep_last_k}")
        if self.compression_ratio < 1.0:
            raise ValueError(
                f"compression ratio must be >= 1, got {self.compression_ratio}"
            )
        if self.compression_mb_per_s < 0.0:
            raise ValueError(
                f"compression throughput must be >= 0, got {self.compression_mb_per_s}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def full(
        cls, *, compression_ratio: float = 1.0, compression_mb_per_s: float = 0.0
    ) -> "StoragePolicy":
        """The paper's flat full-image transfers (optionally compressed)."""
        return cls(
            mode="full",
            full_every_k=1,
            compression_ratio=compression_ratio,
            compression_mb_per_s=compression_mb_per_s,
        )

    def cycle_length(self) -> int:
        """Snapshots per full-to-full cycle (1 full + ``k-1`` deltas)."""
        if self.mode == "full":
            return 1
        k = self.full_every_k
        if self.keep_last_k is not None:
            k = min(k, self.keep_last_k)
        return max(k, 1)

    def make_delta_model(self) -> DeltaSizeModel:
        if self.mode == "full":
            return FullDelta()
        if self.delta_model == "fixed":
            return FixedFractionDelta(self.delta_fraction)
        return DirtyPageDelta(self.dirty_tau)

    def make_compressor(self) -> Compressor:
        return Compressor(self.compression_ratio, self.compression_mb_per_s)
