"""Checkpoint compression: fewer bytes on the wire, CPU time in exchange.

Compressing a snapshot before it leaves the machine divides the wire
bytes by the achieved ratio but spends CPU seconds the job could have
used for work -- time that belongs in the effective checkpoint cost
``C`` the optimizer sees (Vaidya's model makes no distinction between
transfer seconds and compression seconds; both delay the commit).

The model is deliberately coarse: a constant achieved ratio and a
constant compressor throughput.  Decompression on restore is assumed
free (LZ4/zstd decompression runs an order of magnitude faster than
compression and overlaps the transfer), so recovery pays only for the
compressed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressedTransfer", "Compressor"]


@dataclass(frozen=True)
class CompressedTransfer:
    """What one snapshot costs after compression."""

    raw_mb: float
    wire_mb: float
    cpu_seconds: float


class Compressor:
    """Constant-ratio, constant-throughput compression model.

    Parameters
    ----------
    ratio:
        Achieved compression ratio (``wire = raw / ratio``); ``1`` means
        no compression.
    throughput_mb_per_s:
        Compressor speed on the raw bytes; ``0`` models free/instant
        compression (or a ratio of 1 with no compressor in the path).
    """

    def __init__(self, ratio: float = 1.0, throughput_mb_per_s: float = 0.0) -> None:
        if ratio < 1.0:
            raise ValueError(f"compression ratio must be >= 1, got {ratio}")
        if throughput_mb_per_s < 0.0:
            raise ValueError(
                f"compressor throughput must be >= 0, got {throughput_mb_per_s}"
            )
        self.ratio = float(ratio)
        self.throughput_mb_per_s = float(throughput_mb_per_s)

    @property
    def is_identity(self) -> bool:
        # reprolint: ignore[RL002] - both fields hold constructor values verbatim (never computed), so the sentinel is exact
        return self.ratio == 1.0 and self.throughput_mb_per_s == 0.0

    def compress(self, raw_mb: float) -> CompressedTransfer:
        if raw_mb < 0:
            raise ValueError(f"snapshot size must be >= 0, got {raw_mb}")
        wire = raw_mb / self.ratio
        cpu = raw_mb / self.throughput_mb_per_s if self.throughput_mb_per_s > 0 else 0.0
        return CompressedTransfer(raw_mb=float(raw_mb), wire_mb=wire, cpu_seconds=cpu)
