"""The server-side checkpoint store: snapshots, restore chains, GC.

One :class:`CheckpointStore` models the checkpoint manager's disk for
one job: an ordered list of committed snapshots, each a full image or a
delta against its predecessor.  Recovering the job means fetching the
*restore chain* -- the most recent full image plus every delta committed
after it -- so the recovery transfer is ``chain_mb`` bytes, not one flat
image.  This is the quantity that closes the loop into the Markov
model's ``R``.

Retention runs at commit time:

* committing a full image makes every older snapshot unreachable from
  any future restore, so GC drops them (``gc_freed_mb`` keeps the
  audit trail);
* ``keep_last_k`` caps the retained snapshots: when the active chain
  already holds ``k`` snapshots, :meth:`next_kind` promotes the next
  checkpoint to a full, which both re-bases the chain and lets GC
  reclaim the old one.  The chain length therefore never exceeds
  ``keep_last_k``.

The store is deliberately simulator-agnostic: the trace simulator and
the live (DES) test process both drive it through
:meth:`plan_checkpoint` / :meth:`commit`, keeping "what would this
checkpoint cost" separate from "it actually completed" so evicted
transfers never corrupt the stored state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import active as _metrics
from repro.obs.tracing import active as _trace_active
from repro.storage.policy import StoragePolicy

__all__ = ["CheckpointStore", "PlannedCheckpoint", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One committed snapshot on the store."""

    index: int  # global commit counter, never reused
    kind: str  # "full" | "delta"
    wire_mb: float  # bytes as stored/transferred (post-compression)
    raw_mb: float  # bytes before compression


@dataclass(frozen=True)
class PlannedCheckpoint:
    """A checkpoint the store has sized but not yet committed."""

    kind: str
    raw_mb: float
    wire_mb: float
    cpu_seconds: float


class CheckpointStore:
    """Per-job snapshot store enforcing one :class:`StoragePolicy`."""

    def __init__(self, policy: StoragePolicy, full_mb: float) -> None:
        if full_mb < 0:
            raise ValueError(f"full image size must be >= 0, got {full_mb}")
        self.policy = policy
        self.full_mb = float(full_mb)
        self._compressor = policy.make_compressor()
        self._delta_model = policy.make_delta_model()
        self._snapshots: list[Snapshot] = []
        self.n_committed = 0
        self.n_full = 0
        self.n_delta = 0
        self.gc_freed_mb = 0.0
        self.max_chain_len = 0

    # -- inspection -----------------------------------------------------
    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        return tuple(self._snapshots)

    def chain(self) -> tuple[Snapshot, ...]:
        """The restore chain: last full image plus all later deltas."""
        for j in range(len(self._snapshots) - 1, -1, -1):
            if self._snapshots[j].kind == "full":
                return tuple(self._snapshots[j:])
        return tuple(self._snapshots)

    def chain_length(self) -> int:
        return len(self.chain())

    def stored_mb(self) -> float:
        """Current server-side footprint in (compressed) megabytes."""
        return sum(s.wire_mb for s in self._snapshots)

    def restore_chain_mb(self, full_mb: float | None = None) -> float:
        """Megabytes a recovery must fetch right now.

        An empty store models the paper's bootstrap protocol -- the
        initial transfer "emulates an initial recovery of the available
        memory" -- so it prices a full (compressed) image.
        """
        if not self._snapshots:
            base = self.full_mb if full_mb is None else full_mb
            return self._compressor.compress(base).wire_mb
        return sum(s.wire_mb for s in self.chain())

    # -- the checkpoint protocol ----------------------------------------
    def next_kind(self) -> str:
        """Whether the next snapshot must be a full image or may be a delta."""
        if not self._snapshots or self.policy.mode == "full":
            return "full"
        if self.n_committed % self.policy.full_every_k == 0:
            return "full"
        k = self.policy.keep_last_k
        if k is not None and self.chain_length() >= k:
            return "full"  # a delta would push the retained chain past k
        return "delta"

    def plan_checkpoint(
        self, work_since_last: float, *, full_mb: float | None = None
    ) -> PlannedCheckpoint:
        """Size the next checkpoint without committing it.

        ``full_mb`` optionally overrides the store's image size (the
        live path feeds the workload size model's current state size).
        """
        if work_since_last < 0:
            raise ValueError(f"work since last must be >= 0, got {work_since_last}")
        full = self.full_mb if full_mb is None else float(full_mb)
        kind = self.next_kind()
        if kind == "full":
            raw = full
        else:
            raw = min(self._delta_model.delta_mb(full, work_since_last), full)
        tr = self._compressor.compress(raw)
        return PlannedCheckpoint(
            kind=kind, raw_mb=tr.raw_mb, wire_mb=tr.wire_mb, cpu_seconds=tr.cpu_seconds
        )

    def commit(self, plan: PlannedCheckpoint, *, ts: float | None = None) -> Snapshot:
        """Record a completed checkpoint transfer and run retention.

        ``ts`` is the simulation time the commit happened at, stamped
        onto the trace events this call emits.  ``None`` falls back to
        the active recorder's instrumentation clock (``tr.now``) for
        drivers that keep it fresh (the DES engine); batch/replay
        drivers pass the timestamp explicitly so committing never
        mutates recorder state.
        """
        snap = Snapshot(
            index=self.n_committed, kind=plan.kind, wire_mb=plan.wire_mb, raw_mb=plan.raw_mb
        )
        self._snapshots.append(snap)
        self.n_committed += 1
        reg = _metrics()
        if plan.kind == "full":
            self.n_full += 1
            if reg is not None:
                reg.inc("storage.commits.full")
        else:
            self.n_delta += 1
            if reg is not None:
                reg.inc("storage.commits.delta")
        if reg is not None:
            reg.inc("storage.wire_mb", plan.wire_mb)
        tr = _trace_active()
        if tr is not None:
            # the store has no clock of its own: events are stamped with
            # the caller-supplied ``ts``, falling back to the recorder's
            # instrumentation clock for drivers that keep it fresh
            tr.point(
                "storage", "commit",
                ts=ts,
                args={
                    "kind": plan.kind,
                    "wire_mb": plan.wire_mb,
                    "raw_mb": plan.raw_mb,
                    "index": snap.index,
                },
            )
        self._gc(ts=ts)
        self.max_chain_len = max(self.max_chain_len, self.chain_length())
        return snap

    def _gc(self, *, ts: float | None = None) -> None:
        """Drop snapshots unreachable from any future restore."""
        chain = self.chain()
        n_drop = len(self._snapshots) - len(chain)
        if n_drop > 0:
            freed = sum(s.wire_mb for s in self._snapshots[:n_drop])
            self.gc_freed_mb += freed
            self._snapshots = list(chain)
            reg = _metrics()
            if reg is not None:
                reg.inc("storage.gc.runs")
                reg.inc("storage.gc.snapshots_dropped", n_drop)
                reg.inc("storage.gc.freed_mb", freed)
            tr = _trace_active()
            if tr is not None:
                tr.point(
                    "storage", "gc",
                    ts=ts,
                    args={"dropped": n_drop, "freed_mb": freed},
                )
