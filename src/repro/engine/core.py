"""A small discrete-event simulation kernel (generator coroutines).

The live-Condor emulation (Section 5.2) needs processes that sleep,
wait on each other, and -- crucially -- get *interrupted* when a desktop
owner reclaims a machine mid-transfer.  This kernel provides exactly
that surface, in the style of SimPy but self-contained:

* :class:`Environment` -- the event queue and clock (``env.now``);
* :class:`Event` -- one-shot events with success/failure values;
* :class:`Process` -- a generator coroutine; ``yield`` an event to wait
  for it, ``return`` a value to succeed the process's own event;
* :class:`Interrupt` -- thrown into a process by ``process.interrupt()``
  (eviction, in Condor terms).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotone sequence number breaks ties), so simulations are
reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from itertools import count
from collections.abc import Callable, Generator
from typing import Any

from repro.obs.metrics import active as _metrics
from repro.obs.tracing import active as _trace_active

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "any_of",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (yielding non-events, running backwards...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (the Condor layer passes the
    eviction reason).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# event lifecycle states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the queue, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence with an optional value or exception."""

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-seconds."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed delay (created pre-triggered)."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay)


class Process(Event):
    """A running generator coroutine; itself an event that fires on return."""

    __slots__ = ("_gen", "_target", "name")

    def __init__(
        self, env: "Environment", generator: Generator, name: str | None = None
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        self._gen = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op (the eviction raced
        with completion); a process cannot interrupt itself.
        """
        if self._state != _PENDING:
            return
        reg = _metrics()
        if reg is not None:
            reg.inc("engine.interrupts")
        tr = _trace_active()
        if tr is not None:
            tr.point(
                "engine", "interrupt", ts=self.env.now, track=self.name,
                args={"cause": str(cause) if cause is not None else None},
            )
        wake = Event(self.env)
        wake.callbacks.append(self._resume)
        wake.fail(Interrupt(cause))

    # ------------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        # if an interrupt arrives while we are queued on a target event,
        # unsubscribe from it so we do not resume twice
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self.env._active_process = self
        try:
            if trigger._ok:
                target = self._gen.send(trigger._value)
            else:
                target = self._gen.throw(trigger._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} let an Interrupt escape; "
                "handle it or terminate via return"
            ) from None
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target._state == _PROCESSED:
            # already fired in the past: deliver its value "immediately"
            wake = Event(self.env)
            wake.callbacks.append(self._resume)
            if target._ok:
                wake.succeed(target._value)
            else:
                wake.fail(target._value)
            self._target = wake
        else:
            target.callbacks.append(self._resume)
            self._target = target


def any_of(env: "Environment", events) -> Event:
    """An event that fires as soon as *any* of ``events`` does.

    The winner (the first-triggering source event) is delivered as the
    race's value; later sources fire harmlessly.  A source that failed
    fails the race with the same exception.  Already-processed sources
    win immediately.

    This is the phase primitive of the gang-scheduled extension: "wait
    for the work timer *or* a rank eviction, whichever comes first".
    """
    events = list(events)
    if not events:
        raise SimulationError("any_of requires at least one event")
    race = Event(env)

    def fire(source: Event) -> None:
        if race._state != _PENDING:
            return
        if source._ok:
            race.succeed(source)
        else:
            race.fail(source._value)

    for ev in events:
        if not isinstance(ev, Event):
            raise SimulationError(f"any_of requires events, got {ev!r}")
        if ev._state == _PROCESSED:
            fire(ev)
        else:
            ev.callbacks.append(fire)
    return race


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("cannot step an empty event queue")
        reg = _metrics()
        if reg is not None:
            reg.inc("engine.events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        tr = _trace_active()
        if tr is not None:
            # keep the instrumentation clock fresh for layers that do
            # not know sim time (e.g. the checkpoint store); the step
            # point itself is stride-sampled (see DEFAULT_SAMPLING)
            tr.now = when
            tr.point("engine", "step", ts=when, args={"queue": len(self._queue)})
        had_waiters = bool(event.callbacks)
        event._run_callbacks()
        # a failed event with no waiters is a lost exception -- surface it
        # (interrupt wake-ups always carry their process callback)
        if not event._ok and not had_waiters:
            raise event._value

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is before now={self._now}")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
