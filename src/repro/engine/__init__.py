"""Discrete-event simulation kernel used by the live-Condor emulation."""

from repro.engine.core import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    any_of,
)

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "any_of",
]
