"""Reproduction of *Minimizing the Network Overhead of Checkpointing in
Cycle-harvesting Cluster Environments* (Nurmi, Brevik, Wolski; CLUSTER 2005).

Public API tour
---------------

Fit an availability model and get a checkpoint schedule::

    from repro import CheckpointPlanner

    planner = CheckpointPlanner.fit(durations, model="hyperexp2")
    schedule = planner.schedule(checkpoint_cost=110.0, t_elapsed=3600.0)
    schedule.work_interval(0)   # T_opt(0)

Replay a machine trace under that schedule::

    from repro import SimulationConfig, simulate_trace

    result = simulate_trace(planner.distribution, durations,
                            SimulationConfig(checkpoint_cost=110.0))
    result.efficiency, result.mb_total

Regenerate the paper's artefacts::

    from repro.experiments import run_simulation_study
    print(run_simulation_study().efficiency_table())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    CheckpointCosts,
    CheckpointPlanner,
    CheckpointSchedule,
    MarkovIntervalModel,
    OptimalInterval,
    optimize_interval,
)
from repro.distributions import (
    AvailabilityDistribution,
    Exponential,
    Hyperexponential,
    Weibull,
    fit_all_models,
    fit_exponential,
    fit_hyperexponential,
    fit_model,
    fit_weibull,
)
from repro.simulation import SimulationConfig, SimulationResult, simulate_pool, simulate_trace
from repro.traces import AvailabilityTrace, MachinePool, generate_condor_pool

__version__ = "1.0.0"

__all__ = [
    "AvailabilityDistribution",
    "AvailabilityTrace",
    "CheckpointCosts",
    "CheckpointPlanner",
    "CheckpointSchedule",
    "Exponential",
    "Hyperexponential",
    "MachinePool",
    "MarkovIntervalModel",
    "OptimalInterval",
    "SimulationConfig",
    "SimulationResult",
    "Weibull",
    "__version__",
    "fit_all_models",
    "fit_exponential",
    "fit_hyperexponential",
    "fit_model",
    "fit_weibull",
    "generate_condor_pool",
    "optimize_interval",
    "simulate_pool",
    "simulate_trace",
]
