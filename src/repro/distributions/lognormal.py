"""The lognormal availability model.

Not one of the paper's three candidates, but a standard heavy-tailed
alternative in the availability literature (and one of the synthetic
pool's ground truths), included to demonstrate that the checkpoint
optimizer genuinely works for *any* family with the required algebra:
the partial expectation has the closed form::

    int_0^x t f(t) dt = e^{mu + sigma^2/2} * Phi((ln x - mu - sigma^2) / sigma)

and the future-lifetime distribution comes from the generic conditional
wrapper.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize as spo
from scipy import special

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray

__all__ = ["LogNormal", "fit_lognormal"]

_SQRT2 = math.sqrt(2.0)


def _phi(z: FloatArray) -> FloatArray:
    """Standard normal CDF (vectorised)."""
    return 0.5 * (1.0 + special.erf(np.asarray(z) / _SQRT2))


class LogNormal(AvailabilityDistribution):
    """Lognormal distribution: ``ln X ~ N(mu, sigma^2)``."""

    name = "lognormal"

    __slots__ = ("mu", "sigma")

    def __init__(self, mu: float, sigma: float) -> None:
        if not np.isfinite(mu):
            raise ValueError(f"mu must be finite, got {mu}")
        if not (sigma > 0.0) or not np.isfinite(sigma):
            raise ValueError(f"sigma must be positive and finite, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (np.log(x) - self.mu) / self.sigma
            out = np.exp(-0.5 * z * z) / (x * self.sigma * math.sqrt(2.0 * math.pi))
        return np.where(x > 0.0, out, 0.0)

    def _cdf(self, x: FloatArray) -> FloatArray:
        with np.errstate(divide="ignore"):
            z = (np.log(x) - self.mu) / self.sigma
        return np.where(x > 0.0, _phi(z), 0.0)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    @property
    def n_params(self) -> int:
        return 2

    def params(self) -> dict[str, float]:
        return {"mu": self.mu, "sigma": self.sigma}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        z = (math.log(x) - self.mu) / self.sigma
        return 0.5 * (1.0 + math.erf(z / _SQRT2))

    def partial_expectation_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if not math.isfinite(x):
            return self.mean()
        z = (math.log(x) - self.mu - self.sigma**2) / self.sigma
        return self.mean() * 0.5 * (1.0 + math.erf(z / _SQRT2))

    # -- closed forms ---------------------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        xp = np.maximum(arr, 1e-300)
        with np.errstate(divide="ignore"):
            z = (np.log(xp) - self.mu - self.sigma**2) / self.sigma
        out = self.mean() * _phi(z)
        out = np.where(arr <= 0.0, 0.0, out)
        out = np.where(np.isfinite(arr), out, self.mean())
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = np.exp(self.mu + self.sigma * _SQRT2 * special.erfinv(2.0 * arr - 1.0))
        return float(out) if arr.ndim == 0 else out

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        return rng.lognormal(self.mu, self.sigma, size=size)


def fit_lognormal(data: ArrayLike, censored: ArrayLike | None = None) -> LogNormal:
    """MLE lognormal fit, with optional right censoring.

    Uncensored data has the closed form ``mu = mean(ln x)``,
    ``sigma = std(ln x)``; with censored observations the likelihood
    (density terms for events, survival terms for censored points) is
    maximised numerically from the closed-form start.
    """
    x = np.asarray(data, dtype=np.float64).ravel()
    if x.size == 0:
        raise ValueError("cannot fit a distribution to an empty trace")
    if np.any(x < 0) or not np.all(np.isfinite(x)):
        raise ValueError("availability durations must be non-negative and finite")
    x = np.maximum(x, 1e-9)
    if censored is None:
        cens = np.zeros(x.shape, dtype=bool)
    else:
        cens = np.asarray(censored, dtype=bool).ravel()
        if cens.shape != x.shape:
            raise ValueError("censored mask must match data shape")
        if np.all(cens):
            raise ValueError("at least one uncensored observation is required")
    obs = np.log(x[~cens])
    mu0 = float(obs.mean())
    sigma0 = float(obs.std()) if obs.size > 1 else 1.0
    sigma0 = max(sigma0, 1e-3)
    if not np.any(cens):
        return LogNormal(mu=mu0, sigma=sigma0)

    log_all = np.log(x)

    def neg_ll(theta: FloatArray) -> float:
        mu, log_sigma = theta
        sigma = math.exp(log_sigma)
        z = (log_all - mu) / sigma
        ll = 0.0
        zo = z[~cens]
        ll += float(np.sum(-0.5 * zo * zo - log_all[~cens]) - zo.size * math.log(sigma * math.sqrt(2 * math.pi)))
        zc = z[cens]
        surv = np.clip(1.0 - _phi(zc), 1e-300, 1.0)
        ll += float(np.sum(np.log(surv)))
        return -ll

    res = spo.minimize(
        neg_ll, x0=[mu0, math.log(sigma0)], method="Nelder-Mead",
        options={"xatol": 1e-8, "fatol": 1e-10, "maxiter": 2000},
    )
    mu, log_sigma = res.x
    return LogNormal(mu=float(mu), sigma=float(math.exp(log_sigma)))
