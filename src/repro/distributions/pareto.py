"""The Pareto (Lomax) availability model.

A Lomax distribution -- a Pareto shifted onto ``[0, inf)`` -- is the
classic power-law lifetime model the availability literature reaches for
when even the Weibull's stretched-exponential tail is too light.  Its
algebra is all closed form, and its future-lifetime distribution is
again Lomax with the same shape and a grown scale::

    (F_L)_t  =  Lomax(shape, scale + t)

so the mean residual life is *linear* in the uptime, the most aggressive
"older machines keep going" behaviour in the library.

The shape must exceed 1 for a finite mean (the Markov cost terms need
``E[X] < inf``); the fitter enforces a slightly stronger floor.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize as spo

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray

__all__ = ["Pareto", "fit_pareto"]

#: the fitter's lower bound on the shape (keeps means comfortably finite)
MIN_SHAPE = 1.05


class Pareto(AvailabilityDistribution):
    """Lomax distribution with ``shape`` (alpha > 1) and ``scale`` (lambda)."""

    name = "pareto"

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float) -> None:
        if not (shape > 1.0) or not np.isfinite(shape):
            raise ValueError(
                f"shape must be > 1 for a finite mean, got {shape}"
            )
        if not (scale > 0.0) or not np.isfinite(scale):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        a, lam = self.shape, self.scale
        return (a / lam) * (1.0 + x / lam) ** (-(a + 1.0))

    def _cdf(self, x: FloatArray) -> FloatArray:
        return 1.0 - (1.0 + x / self.scale) ** (-self.shape)

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        xp = np.maximum(arr, 0.0)
        out = (1.0 + xp / self.scale) ** (-self.shape)
        out = np.where(arr >= 0.0, out, 1.0)
        return float(out) if arr.ndim == 0 else out

    def mean(self) -> float:
        return self.scale / (self.shape - 1.0)

    def variance(self) -> float:
        a = self.shape
        if a <= 2.0:
            return math.inf
        return self.scale**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    @property
    def n_params(self) -> int:
        return 2

    def params(self) -> dict[str, float]:
        return {"shape": self.shape, "scale": self.scale}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return 1.0 - (1.0 + x / self.scale) ** (-self.shape)

    def partial_expectation_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if not math.isfinite(x):
            return self.mean()
        a, lam = self.shape, self.scale
        U = 1.0 + x / lam
        return lam * a * (1.0 - U ** (1.0 - a)) / (a - 1.0) - lam * (1.0 - U**-a)

    # -- closed forms ---------------------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        a, lam = self.shape, self.scale
        U = 1.0 + np.maximum(arr, 0.0) / lam
        with np.errstate(invalid="ignore"):
            out = lam * a * (1.0 - U ** (1.0 - a)) / (a - 1.0) - lam * (1.0 - U**-a)
        out = np.where(arr <= 0.0, 0.0, out)
        out = np.where(np.isfinite(arr), out, self.mean())
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = self.scale * ((1.0 - arr) ** (-1.0 / self.shape) - 1.0)
        return float(out) if arr.ndim == 0 else out

    def conditional(self, age: float) -> "Pareto":
        """Closed-form ageing: Lomax(shape, scale + age)."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if age == 0:
            return self
        return Pareto(shape=self.shape, scale=self.scale + age)

    def mean_residual_life(self, t: ArrayLike) -> ScalarOrArray:
        """Linear MRL: ``(scale + t) / (shape - 1)``."""
        arr = np.asarray(t, dtype=np.float64)
        out = (self.scale + np.maximum(arr, 0.0)) / (self.shape - 1.0)
        return float(out) if arr.ndim == 0 else out

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        u = rng.random(size)
        return self.scale * ((1.0 - u) ** (-1.0 / self.shape) - 1.0)


def fit_pareto(
    data: ArrayLike, censored: ArrayLike | None = None, *, min_shape: float = MIN_SHAPE
) -> Pareto:
    """MLE Lomax fit (numerical, censoring-aware).

    The likelihood is maximised over ``(log shape, log scale)`` with
    Nelder-Mead from a moment-matched start; the shape is floored at
    ``min_shape`` so the fitted model always has a finite mean.
    """
    x = np.asarray(data, dtype=np.float64).ravel()
    if x.size == 0:
        raise ValueError("cannot fit a distribution to an empty trace")
    if np.any(x < 0) or not np.all(np.isfinite(x)):
        raise ValueError("availability durations must be non-negative and finite")
    x = np.maximum(x, 1e-9)
    if censored is None:
        cens = np.zeros(x.shape, dtype=bool)
    else:
        cens = np.asarray(censored, dtype=bool).ravel()
        if cens.shape != x.shape:
            raise ValueError("censored mask must match data shape")
        if np.all(cens):
            raise ValueError("at least one uncensored observation is required")

    mean = float(np.mean(x))
    # moment-matched start: for Lomax, mean = lam/(a-1); take a = 2.5
    a0, lam0 = 2.5, 1.5 * mean

    def neg_ll(theta: FloatArray) -> float:
        log_a, log_lam = theta
        a = math.exp(log_a)
        lam = math.exp(log_lam)
        if a <= min_shape - 1e-12:
            return 1e300
        u = np.log1p(x / lam)
        ll = 0.0
        n_obs = int(np.sum(~cens))
        ll += n_obs * (math.log(a) - math.log(lam)) - (a + 1.0) * float(np.sum(u[~cens]))
        ll += -a * float(np.sum(u[cens]))
        return -ll

    res = spo.minimize(
        neg_ll,
        x0=[math.log(a0), math.log(lam0)],
        method="Nelder-Mead",
        options={"xatol": 1e-9, "fatol": 1e-11, "maxiter": 4000},
    )
    a = max(float(math.exp(res.x[0])), min_shape)
    lam = float(math.exp(res.x[1]))
    return Pareto(shape=a, scale=lam)
