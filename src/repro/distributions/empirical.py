"""Empirical distribution of an availability trace.

Used for goodness-of-fit comparisons (KS distance of each parametric fit
against the held-out data) and for bootstrap resampling in the synthetic
experiments.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(AvailabilityDistribution):
    """Step-function (ECDF) distribution over observed durations."""

    name = "empirical"

    __slots__ = ("values",)

    def __init__(self, values: ArrayLike) -> None:
        arr = np.sort(np.asarray(values, dtype=np.float64).ravel())
        if arr.size == 0:
            raise ValueError("empirical distribution requires at least one observation")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("observations must be non-negative and finite")
        self.values = arr
        self.values.setflags(write=False)

    @property
    def n(self) -> int:
        return int(self.values.size)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        # The ECDF has no density; return a histogram-style estimate with
        # Freedman-Diaconis-ish binning so log-likelihood comparisons at
        # least remain finite.  This is only used diagnostically.
        counts, edges = np.histogram(self.values, bins="auto", density=True)
        idx = np.clip(np.searchsorted(edges, x, side="right") - 1, 0, counts.size - 1)
        return counts[idx]

    def _cdf(self, x: FloatArray) -> FloatArray:
        return np.searchsorted(self.values, x, side="right") / self.n

    def mean(self) -> float:
        return float(self.values.mean())

    def variance(self) -> float:
        return float(self.values.var())

    @property
    def n_params(self) -> int:
        return 0

    def params(self) -> dict[str, float]:
        return {"n": float(self.n)}

    def fingerprint(self) -> tuple[object, ...]:
        """ECDFs are parameterised by the whole sample, not by
        ``params()``; hash the data so distinct traces never share
        solver-cache entries."""
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        fp = (
            type(self).__name__,
            (("crc32", float(zlib.crc32(self.values.tobytes()))), ("n", float(self.n))),
        )
        self.__dict__["_fingerprint"] = fp
        return fp

    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        csum = np.concatenate(([0.0], np.cumsum(self.values)))
        idx = np.searchsorted(self.values, np.maximum(arr, 0.0), side="right")
        out = csum[idx] / self.n
        out = np.where(arr <= 0.0, np.where(np.any(self.values <= 0), out, 0.0), out)
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        out = np.quantile(self.values, arr, method="inverted_cdf")
        return float(out) if arr.ndim == 0 else np.asarray(out)

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        """Bootstrap resample of the observed durations."""
        return rng.choice(self.values, size=size, replace=True)
