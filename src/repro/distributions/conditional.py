"""Generic future-lifetime (conditional) distributions -- eq. (8).

Given an availability model ``F`` and the knowledge that the resource has
already been up for ``age`` seconds, the distribution of the *additional*
time until failure is::

    F_age(x) = (F(age + x) - F(age)) / (1 - F(age))

The exponential (memoryless) and hyperexponential (phase-reweighting)
families override :meth:`AvailabilityDistribution.conditional` with
closed forms; this wrapper serves the Weibull and any user-supplied
family.  All quantities (pdf, cdf, partial expectation, quantile,
sampling) reduce to calls on the base distribution, so the closed-form
partial expectations of the base family are preserved.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray
from repro.numerics.quadrature import gauss_legendre

__all__ = ["ConditionalDistribution"]

#: below this survival mass at ``age`` the difference forms
#: ``F(age + x) - F(age)`` / ``PE(age + x) - PE(age)`` have fewer
#: significant digits than the quantities they are meant to resolve, so
#: the wrapper switches to survival-ratio (integral) formulas instead
_DEEP_TAIL_SURV = 1e-9


class ConditionalDistribution(AvailabilityDistribution):
    """Future-lifetime distribution of ``base`` at elapsed age ``age``."""

    name = "conditional"

    __slots__ = ("base", "age", "_surv_age", "_cdf_age", "_pe_age")

    def __init__(self, base: AvailabilityDistribution, age: float) -> None:
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        surv = float(base.sf(age))
        if surv <= 0.0:
            raise ValueError(
                f"conditional distribution undefined: S({age}) = 0 under {base!r}"
            )
        self.base = base
        self.age = float(age)
        self._surv_age = surv
        self._cdf_age = float(base.cdf(age))
        self._pe_age = float(base.partial_expectation(age))

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        return np.asarray(self.base.pdf(self.age + x)) / self._surv_age

    def _cdf(self, x: FloatArray) -> FloatArray:
        if self._surv_age < 0.5:
            # deep in the tail F(age + x) - F(age) cancels catastrophically
            # (both round to 1.0 once S(age) ~ eps); the survival ratio is
            # exact there because sf works with small magnitudes directly
            return 1.0 - np.asarray(self.base.sf(self.age + x)) / self._surv_age
        return (np.asarray(self.base.cdf(self.age + x)) - self._cdf_age) / self._surv_age

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        xp = np.maximum(arr, 0.0)
        out = np.asarray(self.base.sf(self.age + xp)) / self._surv_age
        out = np.where(arr >= 0.0, out, 1.0)
        out = np.clip(out, 0.0, 1.0)
        return float(out) if arr.ndim == 0 else out

    def mean(self) -> float:
        """``E[X - age | X > age]`` via the base partial expectation."""
        if self._surv_age < _DEEP_TAIL_SURV:
            # the difference form below degenerates to noise/S(age) in the
            # deep tail; integrate the stable conditional survival instead
            upper = 1.0
            while float(self.sf(upper)) > 1e-12 and upper < 1e15:
                upper *= 2.0
            return float(
                gauss_legendre(lambda t: np.asarray(self.sf(t)), 0.0, upper, order=64, panels=16)
            )
        return max(
            (self.base.mean() - self._pe_age) / self._surv_age - self.age, 0.0
        )

    def variance(self) -> float:
        # E[(X - age)^2 | X > age] by quadrature on the conditional sf:
        # Var = 2 int_0^inf x S_c(x) dx - mean^2.  We integrate to a far
        # quantile to bound the truncation error.
        upper = float(self.quantile(1.0 - 1e-10))
        if not np.isfinite(upper) or upper <= 0.0:
            upper = max(self.mean() * 50.0, 1.0)
        second = 2.0 * gauss_legendre(
            lambda x: x * np.asarray(self.sf(x)), 0.0, upper, order=64, panels=16
        )
        m = self.mean()
        return max(second - m * m, 0.0)

    @property
    def n_params(self) -> int:
        return self.base.n_params

    def params(self) -> dict[str, float | tuple[float, ...]]:
        return {"age": self.age, **{f"base_{k}": v for k, v in self.base.params().items()}}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if self._surv_age < 0.5:
            # stable in the deep tail, where the cdf difference cancels
            out = 1.0 - float(self.base.sf(self.age + x)) / self._surv_age
        else:
            out = (self.base.cdf_one(self.age + x) - self._cdf_age) / self._surv_age
        # round-off in the ratio can stray a few ulps outside [0, 1]
        return min(max(out, 0.0), 1.0)

    def partial_expectation_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if self._surv_age < _DEEP_TAIL_SURV:
            return self._partial_expectation_tail(x)
        pe_shift = self.base.partial_expectation_one(self.age + x)
        cdf_shift = self.base.cdf_one(self.age + x)
        out = (
            pe_shift - self._pe_age - self.age * (cdf_shift - self._cdf_age)
        ) / self._surv_age
        return max(out, 0.0)

    def _partial_expectation_tail(self, x: float) -> float:
        """``int_0^x t f_age(t) dt`` via the stable survival ratio.

        The difference form ``PE(age + x) - PE(age)`` loses all its
        significant digits once ``S(age)`` drops below machine epsilon
        relative to the mean (both partial expectations saturate at
        ``E[X]``).  Integration by parts gives the equivalent
        ``int_0^x S_age(t) dt - x * S_age(x)``, which only touches the
        well-conditioned conditional survival function.
        """
        integral = gauss_legendre(
            lambda t: np.asarray(self.sf(t)), 0.0, x, order=64, panels=16
        )
        return max(integral - x * float(self.sf(x)), 0.0)

    # -- closed-form reductions -----------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        """``int_0^x t f_age(t) dt`` in terms of the base's ``PE``:

        ``[PE(age + x) - PE(age) - age * (F(age + x) - F(age))] / S(age)``.
        """
        arr = np.asarray(x, dtype=np.float64)
        if self._surv_age < _DEEP_TAIL_SURV:
            flat = np.atleast_1d(arr).astype(np.float64).ravel()
            out = np.asarray(
                [self._partial_expectation_tail(float(v)) if v > 0.0 else 0.0 for v in flat]
            ).reshape(arr.shape)
            return float(out) if arr.ndim == 0 else out
        xp = np.maximum(arr, 0.0)
        pe_shift = np.asarray(self.base.partial_expectation(self.age + xp))
        cdf_shift = np.asarray(self.base.cdf(self.age + xp))
        out = (pe_shift - self._pe_age - self.age * (cdf_shift - self._cdf_age)) / self._surv_age
        out = np.where(arr <= 0.0, 0.0, np.maximum(out, 0.0))
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        """Inverse transform through the base quantile function."""
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        base_q = self._cdf_age + arr * self._surv_age
        out = np.asarray(self.base.quantile(np.clip(base_q, 0.0, 1.0))) - self.age
        out = np.maximum(out, 0.0)
        return float(out) if arr.ndim == 0 else out

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        return np.asarray(self.quantile(rng.random(size)))

    def conditional(self, age: float) -> AvailabilityDistribution:
        """Conditioning composes: ``(F_a)_b = F_{a+b}``."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if age == 0:
            return self
        return self.base.conditional(self.age + age)
