"""Gang availability: the minimum of independent machine lifetimes.

A gang-scheduled parallel job runs on ``W`` machines at once and is
interrupted the moment *any* of them is reclaimed, so the relevant
availability variable is ``min(X_1, ..., X_W)``.  For independent
members the survival function is the product of the members' survival
functions::

    S_gang(x) = prod_i S_i(x)        h_gang(x) = sum_i h_i(x)

which is everything the checkpoint optimizer needs: the density follows
from the hazard sum, conditioning distributes over the members (each at
its own elapsed uptime), and the partial expectation falls back to the
generic quadrature -- this class is the library's demonstration that the
Markov machinery genuinely works for *any* family, as Section 3.5
claims.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray
from repro.numerics.quadrature import gauss_legendre

__all__ = ["ProductAvailability"]


class ProductAvailability(AvailabilityDistribution):
    """Distribution of ``min(X_1, .., X_W)`` over independent members."""

    name = "product"

    __slots__ = ("members",)

    def __init__(self, members: Iterable[AvailabilityDistribution]) -> None:
        members = tuple(members)
        if not members:
            raise ValueError("a gang needs at least one member")
        for m in members:
            if not isinstance(m, AvailabilityDistribution):
                raise TypeError(f"not an availability distribution: {m!r}")
        self.members = members

    @property
    def width(self) -> int:
        return len(self.members)

    # -- primitives ----------------------------------------------------
    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        out = np.ones(arr.shape, dtype=np.float64)
        for m in self.members:
            out = out * np.asarray(m.sf(arr))
        return float(out) if arr.ndim == 0 else out

    def _cdf(self, x: FloatArray) -> FloatArray:
        return 1.0 - np.asarray(self.sf(x))

    def _pdf(self, x: FloatArray) -> FloatArray:
        # f = S * sum_i h_i; guard the vanished-survival region
        surv = np.asarray(self.sf(x))
        hazard = np.zeros(np.shape(x), dtype=np.float64)
        for m in self.members:
            hazard = hazard + np.asarray(m.hazard(x))
        out = surv * hazard
        return np.where(np.isfinite(out), out, 0.0)

    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        surv = 1.0
        for m in self.members:
            surv *= float(m.sf(x))
        return 1.0 - surv

    def mean(self) -> float:
        """``E[min] = int_0^inf S_gang(x) dx`` by adaptive panels."""
        # integrate out to where the gang survival is negligible
        upper = min(float(m.quantile(1.0 - 1e-9)) for m in self.members)
        if not math.isfinite(upper) or upper <= 0.0:
            upper = max(min(m.mean() for m in self.members) * 50.0, 1.0)
        return gauss_legendre(
            lambda t: np.asarray(self.sf(t)), 0.0, upper, order=80, panels=32
        )

    def variance(self) -> float:
        upper = min(float(m.quantile(1.0 - 1e-9)) for m in self.members)
        if not math.isfinite(upper) or upper <= 0.0:
            upper = max(min(m.mean() for m in self.members) * 50.0, 1.0)
        second = 2.0 * gauss_legendre(
            lambda t: t * np.asarray(self.sf(t)), 0.0, upper, order=80, panels=32
        )
        mu = self.mean()
        return max(second - mu * mu, 0.0)

    @property
    def n_params(self) -> int:
        return sum(m.n_params for m in self.members)

    def params(self) -> dict[str, float | tuple[float, ...]]:
        return {
            f"member{i}_{k}": v
            for i, m in enumerate(self.members)
            for k, v in m.params().items()
        }

    # -- conditioning distributes over members --------------------------
    def conditional(self, age: float) -> "ProductAvailability":
        """Every member has survived ``age``: condition each of them."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if age == 0:
            return self
        return ProductAvailability(tuple(m.conditional(age) for m in self.members))

    def at_ages(self, ages: Iterable[float]) -> "ProductAvailability":
        """Condition each member at its *own* uptime (ranks placed at
        different times)."""
        ages = tuple(ages)
        if len(ages) != self.width:
            raise ValueError(f"need {self.width} ages, got {len(ages)}")
        return ProductAvailability(
            tuple(m.conditional(a) if a > 0 else m for m, a in zip(self.members, ages))
        )

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        draws = np.stack([np.asarray(m.sample(size, rng)) for m in self.members])
        return draws.min(axis=0)
