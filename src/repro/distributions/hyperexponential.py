"""The k-phase hyperexponential availability model (eqs. 5-7, 10).

A hyperexponential is a probability-weighted mixture of exponentials
with distinct rates.  It captures the "some sessions are short, some are
very long" bimodality of desktop availability, and -- because each phase
is individually memoryless -- its future-lifetime distribution is again
a hyperexponential with the *same* rates but reweighted mixing
probabilities::

    p_i(t) = p_i e^{-lam_i t} / sum_j p_j e^{-lam_j t}

This closed-form ageing is what makes hyperexponential checkpoint
schedules cheap to compute: surviving for a while shifts the weight onto
the slow phases, lengthening the optimal interval.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray
from repro.distributions.exponential import (
    _exp_partial_expectation,
    exp_partial_expectation_one,
)

__all__ = ["Hyperexponential"]


class Hyperexponential(AvailabilityDistribution):
    """Mixture of exponentials with weights ``probs`` and rates ``rates``."""

    name = "hyperexponential"

    __slots__ = ("probs", "rates")

    def __init__(self, probs: ArrayLike, rates: ArrayLike) -> None:
        p = np.asarray(probs, dtype=np.float64).ravel()
        lam = np.asarray(rates, dtype=np.float64).ravel()
        if p.shape != lam.shape or p.size == 0:
            raise ValueError("probs and rates must be non-empty and of equal length")
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-8):
            raise ValueError(f"mixing probabilities must be >= 0 and sum to 1, got {p}")
        if np.any(lam <= 0) or not np.all(np.isfinite(lam)):
            raise ValueError(f"rates must be positive and finite, got {lam}")
        # Keep phases sorted by rate for deterministic repr/equality; the
        # paper requires pairwise-distinct rates, which the EM fitter
        # enforces by merging near-duplicates.
        order = np.argsort(lam)
        self.probs = p[order] / p.sum()
        self.rates = lam[order]
        self.probs.setflags(write=False)
        self.rates.setflags(write=False)

    @property
    def k(self) -> int:
        """Number of phases."""
        return int(self.rates.size)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        # broadcast: (..., k)
        e = np.exp(-np.multiply.outer(x, self.rates))
        return e @ (self.probs * self.rates)

    def _cdf(self, x: FloatArray) -> FloatArray:
        e = np.exp(-np.multiply.outer(x, self.rates))
        return 1.0 - e @ self.probs

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        xp = np.maximum(arr, 0.0)
        e = np.exp(-np.multiply.outer(xp, self.rates))
        out = np.where(arr >= 0.0, e @ self.probs, 1.0)
        return float(out) if arr.ndim == 0 else out

    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))

    def variance(self) -> float:
        m1 = self.mean()
        m2 = float(np.sum(2.0 * self.probs / self.rates**2))
        return m2 - m1 * m1

    @property
    def n_params(self) -> int:
        # k rates plus k-1 free mixing probabilities
        return 2 * self.k - 1

    def params(self) -> dict[str, tuple[float, ...]]:
        return {"probs": tuple(self.probs), "rates": tuple(self.rates)}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        surv = 0.0
        for p, lam in zip(self.probs, self.rates):
            surv += p * math.exp(-lam * x)
        return 1.0 - surv

    def partial_expectation_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if not math.isfinite(x):
            return self.mean()
        total = 0.0
        for p, lam in zip(self.probs, self.rates):
            total += p * exp_partial_expectation_one(lam, x)
        return total

    # -- closed forms ---------------------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        """Weighted sum of the exponential partial expectations."""
        arr = np.asarray(x, dtype=np.float64)
        out = np.zeros(arr.shape, dtype=np.float64)
        for p, lam in zip(self.probs, self.rates):
            out = out + p * _exp_partial_expectation(float(lam), arr)
        return float(out) if arr.ndim == 0 else out

    def conditional(self, age: float) -> "Hyperexponential":
        """Closed-form ageing: same rates, reweighted probabilities."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if age == 0:
            return self
        # log-sum-exp for numerical stability at large ages
        with np.errstate(divide="ignore"):
            logw = np.log(self.probs) - self.rates * age
        logw = logw - np.max(logw)
        w = np.exp(logw)
        total = w.sum()
        if total <= 0.0 or not np.isfinite(total):  # pragma: no cover - defensive
            w = np.zeros_like(w)
            w[np.argmin(self.rates)] = 1.0
            total = 1.0
        return Hyperexponential(w / total, self.rates)

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        idx = rng.choice(self.k, size=size, p=self.probs)
        scales = 1.0 / self.rates
        return rng.exponential(scale=scales[idx])
