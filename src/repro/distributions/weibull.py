"""The Weibull availability model (eqs. 3-4, 9 of the paper).

With shape ``alpha < 1`` the Weibull is heavy-tailed with a *decreasing*
hazard rate: the longer a machine has already been available, the longer
it is expected to remain available.  This is exactly the regime the
paper's Condor traces live in (the published example machine has
``alpha = 0.43``, ``beta = 3409``), and it is why a non-memoryless model
produces an aperiodic, lengthening checkpoint schedule.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray

__all__ = ["Weibull"]


class Weibull(AvailabilityDistribution):
    """Weibull distribution with ``shape`` (alpha) and ``scale`` (beta)."""

    name = "weibull"

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float) -> None:
        if not (shape > 0.0) or not np.isfinite(shape):
            raise ValueError(f"shape must be positive and finite, got {shape}")
        if not (scale > 0.0) or not np.isfinite(scale):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        a, b = self.shape, self.scale
        z = x / b
        with np.errstate(divide="ignore", invalid="ignore"):
            # z**(a-1) diverges at 0 for a < 1; the density is still
            # integrable, and callers never evaluate the pdf exactly at 0
            # on the hot path.
            out = (a / b) * z ** (a - 1.0) * np.exp(-(z**a))
        return np.where(x > 0.0, out, np.inf if a < 1.0 else (0.0 if a > 1.0 else 1.0 / b))

    def _cdf(self, x: FloatArray) -> FloatArray:
        return -np.expm1(-((x / self.scale) ** self.shape))

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        xp = np.maximum(arr, 0.0)
        out = np.where(arr >= 0.0, np.exp(-((xp / self.scale) ** self.shape)), 1.0)
        return float(out) if arr.ndim == 0 else out

    def hazard(self, x: ArrayLike) -> ScalarOrArray:
        """``h(x) = (alpha/beta) (x/beta)^(alpha-1)`` -- monotone in ``x``."""
        arr = np.asarray(x, dtype=np.float64)
        a, b = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (a / b) * (np.maximum(arr, 0.0) / b) ** (a - 1.0)
        out = np.where(arr > 0.0, out, np.inf if a < 1.0 else (0.0 if a > 1.0 else 1.0 / b))
        return float(out) if arr.ndim == 0 else out

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    @property
    def n_params(self) -> int:
        return 2

    def params(self) -> dict[str, float]:
        return {"shape": self.shape, "scale": self.scale}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return -math.expm1(-((x / self.scale) ** self.shape))

    def partial_expectation_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if not math.isfinite(x):
            return self.mean()
        z = (x / self.scale) ** self.shape
        return self.mean() * float(special.gammainc(1.0 + 1.0 / self.shape, z))

    # -- closed forms ---------------------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        """``int_0^x t f(t) dt = beta * Gamma(1 + 1/alpha) * P(1 + 1/alpha, (x/beta)^alpha)``

        where ``P`` is the regularised lower incomplete gamma function
        (substitute ``u = (t/beta)^alpha``).
        """
        arr = np.asarray(x, dtype=np.float64)
        a1 = 1.0 + 1.0 / self.shape
        z = (np.maximum(arr, 0.0) / self.scale) ** self.shape
        out = self.mean() * special.gammainc(a1, z)
        out = np.where(arr <= 0.0, 0.0, out)
        out = np.where(np.isfinite(arr), out, self.mean())
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = self.scale * (-np.log1p(-arr)) ** (1.0 / self.shape)
        return float(out) if arr.ndim == 0 else out

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        return self.scale * rng.weibull(self.shape, size=size)
