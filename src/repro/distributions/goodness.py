"""Goodness-of-fit measures for availability models.

The paper notes that prior work either assumed exponentials without a
quantitative goodness measure or reported only qualitative fits.  This
module provides the standard quantitative tools used to compare the
exponential / Weibull / hyperexponential candidates on a trace:

* Kolmogorov-Smirnov distance (with the asymptotic p-value),
* Anderson-Darling statistic (more weight in the tails, which is where
  heavy-tailed availability lives),
* log-likelihood, AIC, and BIC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution

__all__ = [
    "GoodnessOfFit",
    "anderson_darling_statistic",
    "evaluate_fit",
    "ks_statistic",
    "ks_pvalue",
]


@dataclass(frozen=True)
class GoodnessOfFit:
    """Bundle of fit-quality measures for one model on one data set."""

    model: str
    n: int
    log_likelihood: float
    aic: float
    bic: float
    ks: float
    ks_pvalue: float
    anderson_darling: float


def ks_statistic(dist: AvailabilityDistribution, data: ArrayLike) -> float:
    """Kolmogorov-Smirnov distance ``sup_x |F_n(x) - F(x)|``."""
    x = np.sort(np.asarray(data, dtype=np.float64).ravel())
    n = x.size
    if n == 0:
        raise ValueError("KS statistic requires at least one observation")
    cdf = np.asarray(dist.cdf(x))
    d_plus = np.max(np.arange(1, n + 1) / n - cdf)
    d_minus = np.max(cdf - np.arange(0, n) / n)
    return float(max(d_plus, d_minus))


def ks_pvalue(d: float, n: int, *, terms: int = 101) -> float:
    """Asymptotic Kolmogorov p-value for distance ``d`` on ``n`` samples.

    Uses the Kolmogorov series ``2 sum_{k>=1} (-1)^{k-1} e^{-2 k^2 t^2}``
    with the standard ``sqrt(n)`` scaling plus the Stephens small-sample
    correction ``t = d (sqrt(n) + 0.12 + 0.11/sqrt(n))``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if d <= 0.0:
        return 1.0
    t = d * (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n))
    total = 0.0
    for k in range(1, terms):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def anderson_darling_statistic(dist: AvailabilityDistribution, data: ArrayLike) -> float:
    """Anderson-Darling ``A^2`` statistic of ``data`` against ``dist``."""
    x = np.sort(np.asarray(data, dtype=np.float64).ravel())
    n = x.size
    if n == 0:
        raise ValueError("AD statistic requires at least one observation")
    u = np.clip(np.asarray(dist.cdf(x)), 1e-12, 1.0 - 1e-12)
    i = np.arange(1, n + 1)
    s = np.sum((2 * i - 1) * (np.log(u) + np.log1p(-u[::-1])))
    return float(-n - s / n)


def evaluate_fit(dist: AvailabilityDistribution, data: ArrayLike) -> GoodnessOfFit:
    """Compute the full goodness-of-fit bundle for ``dist`` on ``data``."""
    x = np.asarray(data, dtype=np.float64).ravel()
    n = x.size
    ll = dist.log_likelihood(x)
    k = dist.n_params
    d = ks_statistic(dist, x)
    return GoodnessOfFit(
        model=dist.name,
        n=n,
        log_likelihood=ll,
        aic=2.0 * k - 2.0 * ll,
        bic=k * math.log(max(n, 1)) - 2.0 * ll,
        ks=d,
        ks_pvalue=ks_pvalue(d, n),
        anderson_darling=anderson_darling_statistic(dist, x),
    )
