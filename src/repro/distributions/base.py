"""Base interface for resource-availability distributions.

The paper models machine availability durations as draws from a
parametric family (exponential, Weibull or hyperexponential).  The
checkpoint-interval optimizer only needs a small algebra of operations on
those families, which this abstract base class pins down:

* density / distribution / survival / hazard functions (vectorised),
* the *partial expectation* ``PE(x) = int_0^x t f(t) dt`` that appears in
  the Markov cost terms ``K02`` and ``K22``,
* the *future-lifetime* (conditional) distribution ``F_t`` of eq. (8),
* sampling, quantiles, and (censoring-aware) log-likelihood for fitting
  and goodness-of-fit.

All array-facing methods accept anything :func:`numpy.asarray` accepts
and return a scalar ``float`` for scalar input or an ``ndarray``
otherwise, so the hot paths of the trace simulator can stay vectorised.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from repro.numerics.quadrature import gauss_legendre

if TYPE_CHECKING:
    from repro.distributions.conditional import ConditionalDistribution

#: the concrete array type every vectorised method traffics in
FloatArray = NDArray[np.float64]

ArrayLike = float | int | FloatArray | list[float] | tuple[float, ...]

#: return type of the array-facing methods: scalar in, float out;
#: array in, array out
ScalarOrArray = float | FloatArray

__all__ = ["AvailabilityDistribution", "ArrayLike", "FloatArray", "ScalarOrArray"]


def _prepare(x: ArrayLike) -> tuple[FloatArray, bool]:
    """Coerce input to a float array, reporting whether it was scalar."""
    arr = np.asarray(x, dtype=np.float64)
    return arr, arr.ndim == 0


def _finish(arr: FloatArray, scalar: bool) -> ScalarOrArray:
    return float(arr) if scalar else arr


class AvailabilityDistribution(abc.ABC):
    """A parametric model of machine-availability durations on ``[0, inf)``."""

    #: short identifier used in tables ("exponential", "weibull", ...)
    name: str = "abstract"

    # ------------------------------------------------------------------
    # primitives each family must provide (array-in / array-out)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _pdf(self, x: FloatArray) -> FloatArray:
        """Density, assuming ``x >= 0`` elementwise."""

    @abc.abstractmethod
    def _cdf(self, x: FloatArray) -> FloatArray:
        """Distribution function, assuming ``x >= 0`` elementwise."""

    @abc.abstractmethod
    def mean(self) -> float:
        """First moment ``E[X]``."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Second central moment ``Var[X]``."""

    @property
    @abc.abstractmethod
    def n_params(self) -> int:
        """Number of free parameters (for AIC/BIC model selection)."""

    @abc.abstractmethod
    def params(self) -> dict[str, float | tuple[float, ...]]:
        """The fitted/constructed parameters, keyed by name."""

    def fingerprint(self) -> tuple[object, ...]:
        """A hashable identity of this distribution: family + parameters.

        Two instances with equal fingerprints represent the same
        mathematical distribution, so solver-cache entries keyed on the
        fingerprint are shared across instances (and across processes,
        once worker snapshots are merged).  Families whose behaviour is
        not fully determined by :meth:`params` (e.g. the empirical
        distribution, parameterised by a whole data vector) must
        override this.  Distributions are treated as immutable after
        construction; the fingerprint is memoised on first use.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        items = tuple(
            (k, tuple(float(x) for x in v) if isinstance(v, tuple) else float(v))
            for k, v in sorted(self.params().items())
        )
        fp = (type(self).__name__, items)
        self.__dict__["_fingerprint"] = fp
        return fp

    # ------------------------------------------------------------------
    # derived quantities with sensible defaults
    # ------------------------------------------------------------------
    def pdf(self, x: ArrayLike) -> ScalarOrArray:
        """Probability density ``f(x)``; zero for negative ``x``."""
        arr, scalar = _prepare(x)
        out = np.where(arr >= 0.0, self._pdf(np.maximum(arr, 0.0)), 0.0)
        return _finish(out, scalar)

    def cdf(self, x: ArrayLike) -> ScalarOrArray:
        """Distribution function ``F(x) = P(X <= x)``; zero for ``x < 0``."""
        arr, scalar = _prepare(x)
        out = np.where(arr >= 0.0, self._cdf(np.maximum(arr, 0.0)), 0.0)
        return _finish(np.clip(out, 0.0, 1.0), scalar)

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        """Survival function ``S(x) = 1 - F(x)``.

        Subclasses override when a numerically superior form exists
        (e.g. ``exp(-(x/beta)^alpha)`` for the Weibull).
        """
        arr, scalar = _prepare(x)
        out = np.where(arr >= 0.0, 1.0 - self._cdf(np.maximum(arr, 0.0)), 1.0)
        return _finish(np.clip(out, 0.0, 1.0), scalar)

    def hazard(self, x: ArrayLike) -> ScalarOrArray:
        """Hazard rate ``h(x) = f(x) / S(x)``."""
        arr, scalar = _prepare(x)
        dens = np.where(arr >= 0.0, self._pdf(np.maximum(arr, 0.0)), 0.0)
        surv = np.asarray(self.sf(arr))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(surv > 0.0, dens / surv, np.inf)
        return _finish(out, scalar)

    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        """Truncated first moment ``PE(x) = int_0^x t f(t) dt``.

        The generic implementation uses composite Gauss-Legendre
        quadrature; the three families of the paper override it with
        closed forms.
        """
        arr, scalar = _prepare(x)
        flat = np.atleast_1d(arr).ravel()
        out = np.empty_like(flat)
        for i, xi in enumerate(flat):
            if xi <= 0.0 or not math.isfinite(xi):
                out[i] = 0.0 if xi <= 0.0 else self.mean()
            else:
                out[i] = gauss_legendre(
                    lambda t: t * np.asarray(self._pdf(t)), 0.0, float(xi), order=64, panels=8
                )
        out = out.reshape(np.shape(arr)) if not scalar else out[0]
        return _finish(np.asarray(out), scalar)

    # -- scalar fast paths (hot loop of the interval optimizer) ---------
    def cdf_one(self, x: float) -> float:
        """Scalar ``F(x)`` without array overhead.

        The golden-section objective evaluates the CDF and partial
        expectation thousands of times per schedule on scalar arguments;
        the three paper families override these with pure-``math``
        implementations (an order of magnitude faster than the ndarray
        path for size-1 inputs).
        """
        return float(self.cdf(x))

    def partial_expectation_one(self, x: float) -> float:
        """Scalar ``PE(x)`` without array overhead."""
        return float(self.partial_expectation(x))

    def truncated_mean(self, x: ArrayLike) -> ScalarOrArray:
        """``E[X | X <= x] = PE(x) / F(x)`` (the ``K02``/``K22`` cost form)."""
        arr, scalar = _prepare(x)
        pe = np.asarray(self.partial_expectation(arr))
        prob = np.asarray(self.cdf(arr))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(prob > 0.0, pe / prob, 0.0)
        return _finish(out, scalar)

    def mean_residual_life(self, t: ArrayLike) -> ScalarOrArray:
        """``E[X - t | X > t]``: expected remaining availability at age ``t``."""
        arr, scalar = _prepare(t)
        surv = np.asarray(self.sf(arr))
        pe = np.asarray(self.partial_expectation(arr))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(surv > 0.0, (self.mean() - pe) / surv - arr, 0.0)
        return _finish(np.maximum(out, 0.0), scalar)

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        """Inverse CDF; the generic implementation bisects on ``cdf``."""
        arr, scalar = _prepare(q)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        flat = np.atleast_1d(arr).astype(np.float64).ravel()
        out = np.empty_like(flat)
        hi0 = max(self.mean() * 4.0, 1.0)
        for i, qi in enumerate(flat):
            if qi <= 0.0:
                out[i] = 0.0
                continue
            if qi >= 1.0:
                out[i] = np.inf
                continue
            lo, hi = 0.0, hi0
            while self.cdf(hi) < qi:
                hi *= 2.0
                if hi > 1e300:
                    break
            for _ in range(200):
                mid = 0.5 * (lo + hi)
                if self.cdf(mid) < qi:
                    lo = mid
                else:
                    hi = mid
                if hi - lo <= 1e-12 * (1.0 + hi):
                    break
            out[i] = 0.5 * (lo + hi)
        out = out.reshape(np.shape(arr)) if not scalar else np.asarray(out[0])
        return _finish(out, scalar)

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        """Draw samples by inverse transform (overridden where faster)."""
        u = rng.random(size)
        return np.asarray(self.quantile(u))

    def conditional(self, age: float) -> "AvailabilityDistribution":
        """The future-lifetime distribution ``F_age`` of eq. (8).

        Given that the resource has already been available for ``age``
        seconds, returns the distribution of the *additional* time until
        it fails.  The exponential's memorylessness and the
        hyperexponential's reweighting property give closed-form results;
        the generic fallback wraps this distribution in a
        :class:`~repro.distributions.conditional.ConditionalDistribution`.
        """
        from repro.distributions.conditional import ConditionalDistribution

        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        if age == 0:
            return self
        return ConditionalDistribution(self, age)

    # ------------------------------------------------------------------
    # likelihood (with optional right censoring)
    # ------------------------------------------------------------------
    def log_likelihood(
        self,
        data: ArrayLike,
        censored: ArrayLike | None = None,
    ) -> float:
        """Log-likelihood of ``data`` under this distribution.

        Parameters
        ----------
        data:
            Observed availability durations (non-negative).
        censored:
            Optional boolean mask; ``True`` marks a *right-censored*
            observation (the resource was still available when
            observation stopped), which contributes ``log S(x)`` instead
            of ``log f(x)``.
        """
        x = np.asarray(data, dtype=np.float64).ravel()
        if x.size == 0:
            return 0.0
        if np.any(x < 0):
            raise ValueError("availability durations must be non-negative")
        if censored is None:
            cens = np.zeros(x.shape, dtype=bool)
        else:
            cens = np.asarray(censored, dtype=bool).ravel()
            if cens.shape != x.shape:
                raise ValueError("censored mask must match data shape")
        total = 0.0
        obs = x[~cens]
        if obs.size:
            with np.errstate(divide="ignore"):
                total += float(np.sum(np.log(np.asarray(self.pdf(obs)))))
        cen = x[cens]
        if cen.size:
            with np.errstate(divide="ignore"):
                total += float(np.sum(np.log(np.asarray(self.sf(cen)))))
        return total

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"
