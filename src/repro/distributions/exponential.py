"""The exponential availability model (eqs. 1-2 of the paper).

The exponential is the baseline every prior checkpoint-interval study
used: a single rate parameter ``lambda``, and the *memoryless* property
``F_t = F`` for every age ``t``, which is what makes a single periodic
checkpoint interval optimal under this model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray, ScalarOrArray

__all__ = ["Exponential", "exp_partial_expectation_one"]

#: below this value of ``u = lam * x`` the closed form
#: ``1/lam - (x + 1/lam) e^{-lam x}`` loses all digits to cancellation
#: (the result is O(lam x^2) but the terms are O(1/lam)); switch to the
#: Taylor series ``lam x^2 (1/2 - u/3 + u^2/8 - u^3/30)``
_SERIES_CUTOFF = 1e-4


def exp_partial_expectation_one(lam: float, x: float) -> float:
    """Numerically robust ``int_0^x t lam e^{-lam t} dt`` (scalar)."""
    if x <= 0.0:
        return 0.0
    if not math.isfinite(x):
        return 1.0 / lam
    u = lam * x
    if u < _SERIES_CUTOFF:
        return lam * x * x * (0.5 - u / 3.0 + u * u / 8.0 - u * u * u / 30.0)
    inv = 1.0 / lam
    return inv - (x + inv) * math.exp(-u)


def _exp_partial_expectation(lam: float, x: FloatArray) -> FloatArray:
    """Vectorised, series-protected exponential partial expectation."""
    xp = np.maximum(x, 0.0)
    u = lam * xp
    inv = 1.0 / lam
    with np.errstate(invalid="ignore"):  # inf * 0 / inf - inf at x = inf, masked below
        closed = inv - (xp + inv) * np.exp(-u)
        series = lam * xp * xp * (0.5 - u / 3.0 + u * u / 8.0 - u**3 / 30.0)
    out = np.where(u < _SERIES_CUTOFF, series, closed)
    out = np.where(np.isfinite(x), out, inv)
    return np.where(x <= 0.0, 0.0, out)


class Exponential(AvailabilityDistribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``)."""

    name = "exponential"

    __slots__ = ("lam",)

    def __init__(self, lam: float) -> None:
        if not (lam > 0.0) or not np.isfinite(lam):
            raise ValueError(f"rate must be positive and finite, got {lam}")
        self.lam = float(lam)

    # -- primitives ----------------------------------------------------
    def _pdf(self, x: FloatArray) -> FloatArray:
        return self.lam * np.exp(-self.lam * x)

    def _cdf(self, x: FloatArray) -> FloatArray:
        return -np.expm1(-self.lam * x)

    def sf(self, x: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(x, dtype=np.float64)
        out = np.where(arr >= 0.0, np.exp(-self.lam * np.maximum(arr, 0.0)), 1.0)
        return float(out) if arr.ndim == 0 else out

    def mean(self) -> float:
        return 1.0 / self.lam

    def variance(self) -> float:
        return 1.0 / self.lam**2

    @property
    def n_params(self) -> int:
        return 1

    def params(self) -> dict[str, float]:
        return {"lam": self.lam}

    # -- scalar fast paths ------------------------------------------------
    def cdf_one(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return -math.expm1(-self.lam * x)

    def partial_expectation_one(self, x: float) -> float:
        return exp_partial_expectation_one(self.lam, x)

    # -- closed forms ---------------------------------------------------
    def partial_expectation(self, x: ArrayLike) -> ScalarOrArray:
        """``int_0^x t lam e^{-lam t} dt = 1/lam - (x + 1/lam) e^{-lam x}``
        (series-protected for ``lam * x`` near zero)."""
        arr = np.asarray(x, dtype=np.float64)
        out = _exp_partial_expectation(self.lam, arr)
        return float(out) if arr.ndim == 0 else out

    def quantile(self, q: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(q, dtype=np.float64)
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = -np.log1p(-arr) / self.lam
        return float(out) if arr.ndim == 0 else out

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> FloatArray:
        return rng.exponential(scale=1.0 / self.lam, size=size)

    def conditional(self, age: float) -> "Exponential":
        """Memorylessness: the future-lifetime distribution is itself."""
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age}")
        return self

    def mean_residual_life(self, t: ArrayLike) -> ScalarOrArray:
        arr = np.asarray(t, dtype=np.float64)
        out = np.full_like(arr, 1.0 / self.lam)
        return float(out) if arr.ndim == 0 else out
