"""Maximum-likelihood estimation for exponential and Weibull models.

Both estimators accept *right-censored* observations: a censored duration
``x`` means "the machine was still available after ``x`` seconds when we
stopped watching", which is exactly the situation the paper's Section 5.3
identifies as a source of simulation/empirical discrepancy (the 2-day
live window right-censors long availability runs).

Exponential MLE (with censoring) is closed form::

    lam = (# uncensored) / sum(all durations)

Weibull MLE reduces to the one-dimensional profile-likelihood equation in
the shape parameter ``alpha``::

    g(alpha) = sum_i w_i x_i^alpha ln x_i / sum_i w_i x_i^alpha
               - 1/alpha - (1/r) sum_{uncensored} ln x_i = 0

(with ``w_i = 1``; censored points enter the power sums but not the
uncensored log mean), solved by safeguarded Newton; the scale then follows
as ``beta = (sum_i x_i^alpha / r)^(1/alpha)``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.distributions.base import ArrayLike, FloatArray

from repro.distributions.exponential import Exponential
from repro.distributions.weibull import Weibull
from repro.numerics.rootfind import RootFindError, newton_safeguarded

__all__ = ["fit_exponential", "fit_weibull"]

#: durations of exactly zero are recorded by the occupancy monitor when a
#: machine is reclaimed immediately; nudge them to keep logs finite.
_MIN_DURATION = 1e-9


def _validate(data: ArrayLike, censored: ArrayLike | None) -> tuple[FloatArray, npt.NDArray[np.bool_]]:
    x = np.asarray(data, dtype=np.float64).ravel()
    if x.size == 0:
        raise ValueError("cannot fit a distribution to an empty trace")
    if np.any(x < 0) or not np.all(np.isfinite(x)):
        raise ValueError("availability durations must be non-negative and finite")
    x = np.maximum(x, _MIN_DURATION)
    if censored is None:
        cens = np.zeros(x.shape, dtype=bool)
    else:
        cens = np.asarray(censored, dtype=bool).ravel()
        if cens.shape != x.shape:
            raise ValueError("censored mask must match data shape")
    if np.all(cens):
        raise ValueError("at least one uncensored observation is required")
    return x, cens


def fit_exponential(data: ArrayLike, censored: ArrayLike | None = None) -> Exponential:
    """MLE exponential fit; censored durations count toward exposure only."""
    x, cens = _validate(data, censored)
    n_events = int(np.sum(~cens))
    total = float(np.sum(x))
    return Exponential(lam=n_events / total)


def fit_weibull(
    data: ArrayLike,
    censored: ArrayLike | None = None,
    *,
    shape_bounds: tuple[float, float] = (1e-3, 1e3),
    tol: float = 1e-12,
) -> Weibull:
    """MLE Weibull fit via the profile-likelihood shape equation.

    Parameters
    ----------
    data, censored:
        Durations and optional right-censoring mask.
    shape_bounds:
        Bracket for the shape parameter search.  The default spans far
        beyond anything availability data produces (the paper's example
        machine has shape 0.43).
    tol:
        Convergence tolerance for the Newton iteration.
    """
    x, cens = _validate(data, censored)
    obs = x[~cens]
    r = obs.size
    if np.ptp(x) == 0.0 and x.size > 1:
        # Degenerate trace: all durations identical.  The likelihood is
        # unbounded as shape -> inf; clamp to the bracket edge.
        return Weibull(shape=shape_bounds[1], scale=float(x[0]))
    log_x = np.log(x)
    mean_log_obs = float(np.mean(np.log(obs)))

    def g(alpha: float) -> float:
        # work in a numerically safe scale: x^alpha = exp(alpha log x),
        # stabilised by subtracting the max exponent
        z = alpha * log_x
        z -= z.max()
        w = np.exp(z)
        sw = w.sum()
        swl = float(np.dot(w, log_x))
        return swl / sw - 1.0 / alpha - mean_log_obs

    def dg(alpha: float) -> float:
        z = alpha * log_x
        z -= z.max()
        w = np.exp(z)
        sw = w.sum()
        swl = float(np.dot(w, log_x))
        swll = float(np.dot(w, log_x**2))
        return (swll * sw - swl * swl) / (sw * sw) + 1.0 / (alpha * alpha)

    lo, hi = shape_bounds
    # g is increasing in alpha (dg > 0); expand the bracket if needed.
    glo, ghi = g(lo), g(hi)
    if glo > 0.0:
        alpha = lo
    elif ghi < 0.0:
        alpha = hi
    else:
        try:
            alpha = newton_safeguarded(g, dg, 1.0, lo=lo, hi=hi, tol=tol)
        except RootFindError:  # pragma: no cover - bracket checked above
            alpha = 1.0
    z = alpha * log_x
    zmax = z.max()
    beta = float(np.exp((zmax + np.log(np.sum(np.exp(z - zmax)) / r)) / alpha))
    return Weibull(shape=alpha, scale=beta)
