"""Parameter estimation for availability models.

The paper's workflow ("a software system that takes a set of measurements
as inputs and computes Weibull, exponential, and hyperexponential
parameters automatically") maps onto:

* :func:`fit_exponential` / :func:`fit_weibull` -- maximum-likelihood
  estimators (the paper used Matlab's ``mle``); both accept right-censored
  observations.
* :func:`fit_hyperexponential` -- expectation-maximisation for k-phase
  hyperexponentials (the paper used the EMPht package), with censoring,
  deterministic quantile initialisation and optional random restarts.
* :func:`fit_model` / :func:`fit_all_models` -- the dispatcher producing
  the paper's four candidate models (exponential, Weibull, 2-phase and
  3-phase hyperexponential) from one trace.
"""

from repro.distributions.fitting.em import EMResult, fit_hyperexponential
from repro.distributions.fitting.mle import fit_exponential, fit_weibull
from repro.distributions.fitting.select import (
    MODEL_NAMES,
    ModelSuite,
    fit_all_models,
    fit_model,
    select_best_model,
)

__all__ = [
    "EMResult",
    "MODEL_NAMES",
    "ModelSuite",
    "fit_all_models",
    "fit_exponential",
    "fit_hyperexponential",
    "fit_model",
    "fit_weibull",
    "select_best_model",
]
