"""Expectation-maximisation for k-phase hyperexponential models.

The paper fits hyperexponentials with the EMPht package because "it is
numerically difficult to find estimators which have statistically
desirable properties for their parameters".  A k-phase hyperexponential
is a mixture of exponentials, for which EM is the standard estimator:

E-step (responsibilities, uncensored observation ``x_i``)::

    r_ik = p_k lam_k e^{-lam_k x_i} / sum_j p_j lam_j e^{-lam_j x_i}

E-step (right-censored observation, survival contributions)::

    r_ik = p_k e^{-lam_k x_i} / sum_j p_j e^{-lam_j x_i}

M-step (complete-data MLE in expectation; censored lifetimes have
conditional expectation ``x_i + 1/lam_k`` under phase ``k``)::

    p_k   = mean_i r_ik
    lam_k = sum_i r_ik / ( sum_{unc} r_ik x_i + sum_{cens} r_ik (x_i + 1/lam_k) )

The implementation is fully vectorised, monotone in log-likelihood (the
EM ascent property, asserted in debug mode), deterministic under the
default quantile initialisation, and supports random restarts for
rugged likelihood surfaces.  Near-duplicate rates are merged at the end
so the returned model satisfies the paper's ``lam_i != lam_j`` condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.distributions.base import ArrayLike, FloatArray

from repro.distributions.hyperexponential import Hyperexponential

__all__ = ["EMResult", "fit_hyperexponential"]

_MIN_DURATION = 1e-9
_MIN_RATE = 1e-12
_MAX_RATE = 1e12


@dataclass(frozen=True)
class EMResult:
    """Outcome of one EM fit."""

    distribution: Hyperexponential
    log_likelihood: float
    iterations: int
    converged: bool
    restarts_used: int


def _log_likelihood(probs: FloatArray, rates: FloatArray, x: FloatArray, cens: npt.NDArray[np.bool_]) -> float:
    # stable mixture log-likelihood via log-sum-exp
    with np.errstate(divide="ignore"):
        log_p = np.log(probs)
        log_lam = np.log(rates)
    expo = -np.multiply.outer(x, rates)  # (n, k)
    comp = log_p + expo
    comp_unc = comp + log_lam
    logs = np.where(cens[:, None], comp, comp_unc)
    m = logs.max(axis=1, keepdims=True)
    return float(np.sum(m.ravel() + np.log(np.sum(np.exp(logs - m), axis=1))))


def _quantile_init(x: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic initialisation: split the sorted data into k groups."""
    xs = np.sort(x)
    groups = np.array_split(xs, k)
    rates = np.empty(k)
    probs = np.full(k, 1.0 / k)
    for i, grp in enumerate(groups):
        mean = float(np.mean(grp)) if grp.size else float(np.mean(xs))
        rates[i] = 1.0 / max(mean, _MIN_DURATION)
    # jitter exactly equal rates apart
    for i in range(1, k):
        if rates[i] >= rates[i - 1]:
            rates[i] = rates[i - 1] * 0.5
    return probs, rates


def _em_iterate(
    x: np.ndarray,
    cens: np.ndarray,
    probs: np.ndarray,
    rates: np.ndarray,
    *,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, np.ndarray, float, int, bool]:
    ll_prev = _log_likelihood(probs, rates, x, cens)
    n = x.size
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # E-step: responsibilities in log space
        with np.errstate(divide="ignore"):
            log_p = np.log(probs)
            log_lam = np.log(rates)
        comp = log_p - np.multiply.outer(x, rates)
        comp = np.where(cens[:, None], comp, comp + log_lam)
        comp -= comp.max(axis=1, keepdims=True)
        resp = np.exp(comp)
        resp /= resp.sum(axis=1, keepdims=True)

        # M-step
        nk = resp.sum(axis=0)
        probs_new = nk / n
        # expected total lifetime attributed to phase k
        exposure = resp.T @ x  # (k,)
        if np.any(cens):
            exposure = exposure + (resp[cens].sum(axis=0)) / np.maximum(rates, _MIN_RATE)
        with np.errstate(divide="ignore", invalid="ignore"):
            rates_new = np.where(exposure > 0.0, nk / exposure, rates)
        rates_new = np.clip(rates_new, _MIN_RATE, _MAX_RATE)
        # guard collapsed phases (zero weight)
        dead = probs_new < 1e-300
        if np.any(dead):
            probs_new = np.where(dead, 1e-300, probs_new)
            probs_new /= probs_new.sum()
        probs, rates = probs_new, rates_new
        ll = _log_likelihood(probs, rates, x, cens)
        if ll + 1e-9 < ll_prev:  # EM must ascend up to round-off
            break
        if abs(ll - ll_prev) <= tol * (1.0 + abs(ll)):
            ll_prev = ll
            converged = True
            break
        ll_prev = ll
    return probs, rates, ll_prev, it, converged


def _merge_duplicate_rates(
    probs: FloatArray, rates: FloatArray, rel_tol: float = 1e-6
) -> tuple[FloatArray, FloatArray]:
    """Merge phases whose rates coincide (paper requires distinct rates)."""
    order = np.argsort(rates)
    probs, rates = probs[order], rates[order]
    out_p, out_r = [probs[0]], [rates[0]]
    for p, r in zip(probs[1:], rates[1:]):
        if abs(r - out_r[-1]) <= rel_tol * max(abs(r), abs(out_r[-1])):
            out_p[-1] += p
        else:
            out_p.append(p)
            out_r.append(r)
    return np.asarray(out_p), np.asarray(out_r)


def fit_hyperexponential(
    data: ArrayLike,
    k: int = 2,
    censored: ArrayLike | None = None,
    *,
    max_iter: int = 500,
    tol: float = 1e-10,
    n_restarts: int = 2,
    rng: np.random.Generator | None = None,
) -> EMResult:
    """Fit a ``k``-phase hyperexponential to ``data`` by EM.

    Parameters
    ----------
    data, censored:
        Durations and optional right-censoring mask.
    k:
        Number of phases (the paper uses 2 and 3).
    max_iter, tol:
        EM iteration cap and relative log-likelihood tolerance.
    n_restarts:
        Number of additional randomly-perturbed initialisations; the
        best (highest log-likelihood) fit wins.  ``0`` keeps only the
        deterministic quantile initialisation.
    rng:
        Generator used for restart perturbations; defaults to a fixed
        seed so fitting is reproducible.
    """
    if k < 1:
        raise ValueError(f"number of phases must be >= 1, got {k}")
    x = np.asarray(data, dtype=np.float64).ravel()
    if x.size == 0:
        raise ValueError("cannot fit a distribution to an empty trace")
    if np.any(x < 0) or not np.all(np.isfinite(x)):
        raise ValueError("availability durations must be non-negative and finite")
    x = np.maximum(x, _MIN_DURATION)
    if censored is None:
        cens = np.zeros(x.shape, dtype=bool)
    else:
        cens = np.asarray(censored, dtype=bool).ravel()
        if cens.shape != x.shape:
            raise ValueError("censored mask must match data shape")
        if np.all(cens):
            raise ValueError("at least one uncensored observation is required")
    if rng is None:
        rng = np.random.default_rng(20050926)  # CLUSTER 2005 conference date

    best = None
    restarts_used = 0
    p0, r0 = _quantile_init(x, k)
    inits = [(p0, r0)]
    for _ in range(n_restarts):
        jitter = np.exp(rng.normal(0.0, 0.75, size=k))
        pr = rng.dirichlet(np.ones(k))
        inits.append((pr, np.clip(r0 * jitter, _MIN_RATE, _MAX_RATE)))
    for i, (p_init, r_init) in enumerate(inits):
        probs, rates, ll, iters, conv = _em_iterate(
            x, cens, p_init.copy(), r_init.copy(), max_iter=max_iter, tol=tol
        )
        if best is None or ll > best[2]:
            best = (probs, rates, ll, iters, conv)
            restarts_used = i
    probs, rates, ll, iters, conv = best
    probs, rates = _merge_duplicate_rates(probs, rates)
    dist = Hyperexponential(probs, rates)
    return EMResult(
        distribution=dist,
        log_likelihood=ll,
        iterations=iters,
        converged=conv,
        restarts_used=restarts_used,
    )
