"""Fitting dispatcher and model selection.

The paper compares exactly four candidate models on every trace:
exponential (MLE), Weibull (MLE), and 2-/3-phase hyperexponentials (EM).
:func:`fit_all_models` produces that suite from one training set;
:func:`select_best_model` ranks the suite by information criterion, which
backs the ablation experiments on automatic model choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution
from repro.distributions.fitting.em import fit_hyperexponential
from repro.distributions.fitting.mle import fit_exponential, fit_weibull

__all__ = ["MODEL_NAMES", "ModelSuite", "fit_all_models", "fit_model", "select_best_model"]

#: canonical model identifiers, in the paper's column order
MODEL_NAMES: tuple[str, ...] = ("exponential", "weibull", "hyperexp2", "hyperexp3")

#: the paper's single-letter significance markers per model
MODEL_MARKERS: dict[str, str] = {
    "exponential": "e",
    "weibull": "w",
    "hyperexp2": "2",
    "hyperexp3": "3",
}

#: human-readable column headers used by the experiment tables
MODEL_LABELS: dict[str, str] = {
    "exponential": "Exp.",
    "weibull": "Weib.",
    "hyperexp2": "2-phase Hyperexp.",
    "hyperexp3": "3-phase Hyperexp.",
    "lognormal": "LogNormal",
    "pareto": "Pareto",
}


def fit_model(
    name: str,
    data: ArrayLike,
    censored: ArrayLike | None = None,
    *,
    rng: np.random.Generator | None = None,
) -> AvailabilityDistribution:
    """Fit one named model.

    ``name`` is one of the paper's candidates -- ``"exponential"``,
    ``"weibull"``, ``"hyperexpK"`` (any integer K) -- or one of the extra
    heavy-tailed families ``"lognormal"`` / ``"pareto"``.
    """
    if name == "exponential":
        return fit_exponential(data, censored)
    if name == "weibull":
        return fit_weibull(data, censored)
    if name == "lognormal":
        from repro.distributions.lognormal import fit_lognormal

        return fit_lognormal(data, censored)
    if name == "pareto":
        from repro.distributions.pareto import fit_pareto

        return fit_pareto(data, censored)
    if name.startswith("hyperexp"):
        suffix = name[len("hyperexp") :]
        try:
            k = int(suffix)
        except ValueError as exc:
            raise ValueError(f"unknown model name: {name!r}") from exc
        return fit_hyperexponential(data, k=k, censored=censored, rng=rng).distribution
    raise ValueError(f"unknown model name: {name!r}; expected one of {MODEL_NAMES}")


@dataclass(frozen=True)
class ModelSuite:
    """The paper's four fitted candidate models for one machine trace."""

    exponential: AvailabilityDistribution
    weibull: AvailabilityDistribution
    hyperexp2: AvailabilityDistribution
    hyperexp3: AvailabilityDistribution

    def __getitem__(self, name: str) -> AvailabilityDistribution:
        if name not in MODEL_NAMES:
            raise KeyError(f"unknown model name: {name!r}")
        return getattr(self, name)

    def items(self) -> Iterator[tuple[str, AvailabilityDistribution]]:
        for name in MODEL_NAMES:
            yield name, getattr(self, name)


def fit_all_models(
    data: ArrayLike,
    censored: ArrayLike | None = None,
    *,
    rng: np.random.Generator | None = None,
    em_restarts: int = 2,
) -> ModelSuite:
    """Fit all four of the paper's candidate models to one training set."""
    return ModelSuite(
        exponential=fit_exponential(data, censored),
        weibull=fit_weibull(data, censored),
        hyperexp2=fit_hyperexponential(
            data, k=2, censored=censored, rng=rng, n_restarts=em_restarts
        ).distribution,
        hyperexp3=fit_hyperexponential(
            data, k=3, censored=censored, rng=rng, n_restarts=em_restarts
        ).distribution,
    )


def select_best_model(
    suite: ModelSuite,
    data: ArrayLike,
    *,
    criterion: str = "bic",
) -> tuple[str, AvailabilityDistribution]:
    """Pick the suite member minimising an information criterion.

    ``criterion`` is one of ``"aic"``, ``"bic"`` or ``"loglik"``
    (``loglik`` maximises the raw log-likelihood and will generally
    prefer the most flexible family).
    """
    if criterion not in ("aic", "bic", "loglik"):
        raise ValueError(f"unknown criterion: {criterion!r}")
    x = np.asarray(data, dtype=np.float64).ravel()
    n = max(x.size, 1)
    best_name, best_dist, best_score = None, None, math.inf
    for name, dist in suite.items():
        ll = dist.log_likelihood(x)
        if criterion == "aic":
            score = 2.0 * dist.n_params - 2.0 * ll
        elif criterion == "bic":
            score = dist.n_params * math.log(n) - 2.0 * ll
        else:
            score = -ll
        if score < best_score:
            best_name, best_dist, best_score = name, dist, score
    return best_name, best_dist
