"""Availability-distribution models (Section 3.1-3.4 of the paper).

This package implements the three parametric families the paper compares
(exponential, Weibull, hyperexponential), the future-lifetime conditional
distribution of eq. (8), the fitting machinery (MLE for exponential and
Weibull, EM for hyperexponentials) and goodness-of-fit diagnostics.
"""

from repro.distributions.base import AvailabilityDistribution
from repro.distributions.conditional import ConditionalDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.fitting import (
    MODEL_NAMES,
    EMResult,
    ModelSuite,
    fit_all_models,
    fit_exponential,
    fit_hyperexponential,
    fit_model,
    fit_weibull,
    select_best_model,
)
from repro.distributions.goodness import (
    GoodnessOfFit,
    anderson_darling_statistic,
    evaluate_fit,
    ks_pvalue,
    ks_statistic,
)
from repro.distributions.hyperexponential import Hyperexponential
from repro.distributions.lognormal import LogNormal, fit_lognormal
from repro.distributions.pareto import Pareto, fit_pareto
from repro.distributions.product import ProductAvailability
from repro.distributions.weibull import Weibull

__all__ = [
    "MODEL_NAMES",
    "AvailabilityDistribution",
    "ConditionalDistribution",
    "EMResult",
    "EmpiricalDistribution",
    "Exponential",
    "GoodnessOfFit",
    "Hyperexponential",
    "LogNormal",
    "ModelSuite",
    "Pareto",
    "ProductAvailability",
    "Weibull",
    "anderson_darling_statistic",
    "evaluate_fit",
    "fit_all_models",
    "fit_exponential",
    "fit_hyperexponential",
    "fit_lognormal",
    "fit_model",
    "fit_pareto",
    "fit_weibull",
    "ks_pvalue",
    "ks_statistic",
    "select_best_model",
]
