"""Scalar root finding: bisection and safeguarded Newton.

The Weibull maximum-likelihood estimator reduces to a single nonlinear
equation in the shape parameter (the profile-likelihood equation); we
solve it with a Newton iteration that falls back to bisection whenever
the Newton step leaves the current bracket or the derivative degenerates.
"""

from __future__ import annotations

import math
from collections.abc import Callable

__all__ = ["RootFindError", "bisect", "newton_safeguarded"]


class RootFindError(RuntimeError):
    """Raised when a root cannot be located or refined."""


def bisect(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of ``func`` in ``[lo, hi]`` by bisection.

    ``func(lo)`` and ``func(hi)`` must have opposite signs (a zero at an
    endpoint is returned immediately).
    """
    flo, fhi = func(lo), func(hi)
    # reprolint: ignore[RL002] - an exactly-zero residual IS the root; near-zero values just keep bisecting
    if flo == 0.0:
        return lo
    if fhi == 0.0:  # reprolint: ignore[RL002] - exact-zero endpoint short-circuit
        return hi
    if flo * fhi > 0.0:
        raise RootFindError(f"no sign change on [{lo}, {hi}]: f(lo)={flo}, f(hi)={fhi}")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = func(mid)
        # reprolint: ignore[RL002] - exact zero terminates; otherwise the width test decides
        if fmid == 0.0 or (hi - lo) < tol * (1.0 + abs(mid)):
            return mid
        if flo * fmid < 0.0:
            hi = mid
        else:
            lo, flo = mid, fmid
    return 0.5 * (lo + hi)


def newton_safeguarded(
    func: Callable[[float], float],
    dfunc: Callable[[float], float],
    x0: float,
    *,
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> float:
    """Newton iteration safeguarded by a bisection bracket.

    ``[lo, hi]`` must bracket a root (opposite signs).  Newton steps are
    taken from the current iterate; whenever a step leaves the bracket or
    the derivative is tiny, a bisection step is substituted.  The bracket
    shrinks monotonically, so convergence is guaranteed.
    """
    flo, fhi = func(lo), func(hi)
    # reprolint: ignore[RL002] - an exactly-zero residual IS the root; near-zero values just keep iterating
    if flo == 0.0:
        return lo
    if fhi == 0.0:  # reprolint: ignore[RL002] - exact-zero endpoint short-circuit
        return hi
    if flo * fhi > 0.0:
        raise RootFindError(f"no sign change on [{lo}, {hi}]: f(lo)={flo}, f(hi)={fhi}")
    x = min(max(x0, lo), hi)
    for _ in range(max_iter):
        fx = func(x)
        if fx == 0.0:  # reprolint: ignore[RL002] - exact zero terminates; tolerance test below decides otherwise
            return x
        if flo * fx < 0.0:
            hi = x
        else:
            lo, flo = x, fx
        dfx = dfunc(x)
        use_bisection = True
        if math.isfinite(dfx) and abs(dfx) > 1e-300:
            step = fx / dfx
            candidate = x - step
            if lo < candidate < hi and math.isfinite(candidate):
                x_new = candidate
                use_bisection = False
        if use_bisection:
            x_new = 0.5 * (lo + hi)
        if abs(x_new - x) < tol * (1.0 + abs(x_new)):
            return x_new
        x = x_new
    return x
