"""Numerical substrate for the checkpoint-scheduling reproduction.

The paper relies on three numerical building blocks, all of which are
implemented here from scratch (the paper cites Numerical Recipes for the
Golden Section Search):

* :mod:`repro.numerics.optimize` -- minimum bracketing (``mnbrak``-style)
  and Golden Section Search used to minimise the expected overhead ratio
  ``Gamma(T)/T`` with respect to the work interval ``T``.
* :mod:`repro.numerics.quadrature` -- adaptive Simpson and fixed-order
  Gauss-Legendre quadrature, used as the generic fallback for partial
  expectations of distribution families without a closed form.
* :mod:`repro.numerics.rootfind` -- safeguarded Newton iteration and
  bisection, used by the Weibull maximum-likelihood estimator.
"""

from repro.numerics.optimize import (
    BatchObjective,
    Bracket,
    BracketError,
    GoldenSectionResult,
    bracket_minimum,
    brent_minimize,
    golden_section_minimize,
    minimize_positive_hybrid,
    minimize_positive_scalar,
)
from repro.numerics.quadrature import (
    QuadratureError,
    adaptive_simpson,
    gauss_legendre,
    gauss_legendre_nodes,
)
from repro.numerics.rootfind import (
    RootFindError,
    bisect,
    newton_safeguarded,
)

__all__ = [
    "BatchObjective",
    "Bracket",
    "BracketError",
    "GoldenSectionResult",
    "QuadratureError",
    "RootFindError",
    "adaptive_simpson",
    "bisect",
    "bracket_minimum",
    "brent_minimize",
    "gauss_legendre",
    "gauss_legendre_nodes",
    "golden_section_minimize",
    "minimize_positive_hybrid",
    "minimize_positive_scalar",
    "newton_safeguarded",
]
