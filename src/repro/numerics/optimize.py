"""Scalar minimisation: bracketing and Golden Section Search.

The paper minimises the expected overhead ratio ``Gamma(T)/T`` with the
Golden Section Search "as implemented in Numerical Recipes".  This module
provides a faithful, dependency-free implementation:

* :func:`bracket_minimum` -- the ``mnbrak`` procedure: starting from two
  abscissae it walks downhill (with parabolic extrapolation and a golden
  ratio growth limit) until it finds a triple ``a < b < c`` with
  ``f(b) <= f(a)`` and ``f(b) <= f(c)``.
* :func:`golden_section_minimize` -- classic golden-section refinement of
  a bracketing triple down to a requested relative tolerance.
* :func:`minimize_positive_scalar` -- the convenience entry point used by
  the checkpoint optimizer: minimises a function over ``(lo, hi)`` with
  bracketing seeded from a caller-supplied initial guess, falling back to
  a coarse grid scan when the function is awkwardly shaped (flat tails,
  plateaus at the domain edge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable

from repro.obs.metrics import active as _metrics

__all__ = [
    "Bracket",
    "BracketError",
    "GoldenSectionResult",
    "bracket_minimum",
    "golden_section_minimize",
    "minimize_positive_scalar",
]

#: golden ratio section constants
_GOLD = 1.618033988749895
_CGOLD = 0.3819660112501051  # 2 - phi: the golden section fraction
_TINY = 1e-21
_GLIMIT = 100.0


class BracketError(RuntimeError):
    """Raised when a bracketing triple around a minimum cannot be found."""


@dataclass(frozen=True)
class Bracket:
    """A bracketing triple ``a < b < c`` with ``f(b) <= min(f(a), f(c))``."""

    a: float
    b: float
    c: float
    fa: float
    fb: float
    fc: float

    def __post_init__(self) -> None:
        if not (self.a < self.b < self.c):
            raise ValueError(f"bracket abscissae must be ordered: {self}")
        if self.fb > self.fa or self.fb > self.fc:
            raise ValueError(f"bracket does not contain a minimum: {self}")


@dataclass(frozen=True)
class GoldenSectionResult:
    """Result of a golden-section minimisation."""

    x: float
    fx: float
    iterations: int
    converged: bool


def bracket_minimum(
    func: Callable[[float], float],
    a: float,
    b: float,
    *,
    grow_limit: float = _GLIMIT,
    max_iter: int = 200,
) -> Bracket:
    """Bracket a minimum of ``func`` starting from abscissae ``a`` and ``b``.

    This follows the ``mnbrak`` routine of Numerical Recipes: the points
    are ordered downhill, then the search steps by golden-ratio
    magnification (with parabolic extrapolation capped at ``grow_limit``
    times the current step) until the function value rises again.

    Raises
    ------
    BracketError
        If no rise in the function is observed within ``max_iter`` steps
        (e.g. the function decreases monotonically over the reachable
        range).
    """
    fa = func(a)
    fb = func(b)
    if fb > fa:  # ensure we walk downhill from a to b
        a, b = b, a
        fa, fb = fb, fa
    c = b + _GOLD * (b - a)
    fc = func(c)
    iterations = 0
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.bracket.calls")
    while fb >= fc:
        iterations += 1
        if iterations > max_iter:
            if reg is not None:
                reg.inc("numerics.bracket.expansions", iterations)
                reg.inc("numerics.bracket.failures")
            raise BracketError(
                f"could not bracket a minimum within {max_iter} expansions "
                f"(last triple: ({a}, {b}, {c}))"
            )
        # Parabolic extrapolation from a, b, c.
        r = (b - a) * (fb - fc)
        q = (b - c) * (fb - fa)
        denom = 2.0 * math.copysign(max(abs(q - r), _TINY), q - r)
        u = b - ((b - c) * q - (b - a) * r) / denom
        ulim = b + grow_limit * (c - b)
        if (b - u) * (u - c) > 0.0:  # u between b and c
            fu = func(u)
            if fu < fc:  # minimum between b and c
                a, b = b, u
                fa, fb = fb, fu
                break
            if fu > fb:  # minimum between a and u
                c, fc = u, fu
                break
            u = c + _GOLD * (c - b)  # parabolic fit useless; golden step
            fu = func(u)
        elif (c - u) * (u - ulim) > 0.0:  # u between c and the limit
            fu = func(u)
            if fu < fc:
                b, c, u = c, u, u + _GOLD * (u - c)
                fb, fc, fu = fc, fu, func(u)
        elif (u - ulim) * (ulim - c) >= 0.0:  # clamp to the limit
            u = ulim
            fu = func(u)
        else:  # reject parabolic u; golden step
            u = c + _GOLD * (c - b)
            fu = func(u)
        a, b, c = b, c, u
        fa, fb, fc = fb, fc, fu
    if a > c:
        a, c = c, a
        fa, fc = fc, fa
    if reg is not None:
        reg.inc("numerics.bracket.expansions", iterations)
    return Bracket(a=a, b=b, c=c, fa=fa, fb=fb, fc=fc)


def golden_section_minimize(
    func: Callable[[float], float],
    bracket: Bracket,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-10,
    max_iter: int = 500,
) -> GoldenSectionResult:
    """Refine a bracketing triple with Golden Section Search.

    Parameters
    ----------
    func:
        The scalar objective.
    bracket:
        A :class:`Bracket` as produced by :func:`bracket_minimum`.
    rel_tol, abs_tol:
        Convergence when the bracket width drops below
        ``rel_tol * (|x1| + |x2|) / 2 + abs_tol``.
    max_iter:
        Hard cap on function evaluations.
    """
    x0, x3 = bracket.a, bracket.c
    if abs(bracket.c - bracket.b) > abs(bracket.b - bracket.a):
        x1 = bracket.b
        x2 = bracket.b + _CGOLD * (bracket.c - bracket.b)
        f1 = bracket.fb
        f2 = func(x2)
    else:
        x2 = bracket.b
        x1 = bracket.b - _CGOLD * (bracket.b - bracket.a)
        f2 = bracket.fb
        f1 = func(x1)
    iterations = 0
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.golden.calls")
    while abs(x3 - x0) > rel_tol * (abs(x1) + abs(x2)) / 2.0 + abs_tol:
        iterations += 1
        if iterations > max_iter:
            x, fx = (x1, f1) if f1 < f2 else (x2, f2)
            if reg is not None:
                reg.inc("numerics.golden.iterations", iterations)
            return GoldenSectionResult(x=x, fx=fx, iterations=iterations, converged=False)
        if f2 < f1:
            x0 = x1
            x1, x2 = x2, x2 + _CGOLD * (x3 - x2)
            f1, f2 = f2, func(x2)
        else:
            x3 = x2
            x2, x1 = x1, x1 - _CGOLD * (x1 - x0)
            f2, f1 = f1, func(x1)
    if reg is not None:
        reg.inc("numerics.golden.iterations", iterations)
    if f1 < f2:
        return GoldenSectionResult(x=x1, fx=f1, iterations=iterations, converged=True)
    return GoldenSectionResult(x=x2, fx=f2, iterations=iterations, converged=True)


def minimize_positive_scalar(
    func: Callable[[float], float],
    *,
    guess: float,
    lo: float = 1e-6,
    hi: float = 1e9,
    rel_tol: float = 1e-8,
    grid_points: int = 64,
) -> GoldenSectionResult:
    """Minimise ``func`` over the open interval ``(lo, hi)``.

    The strategy is the one used throughout the checkpoint optimizer:

    1. try to bracket a minimum around ``guess`` with
       :func:`bracket_minimum` and refine it with golden section;
    2. if bracketing fails (monotone objective, plateau, minimum pinned
       at a boundary), fall back to a log-spaced grid scan of
       ``grid_points`` abscissae followed by golden-section refinement of
       the best grid cell.

    This makes the optimizer robust to the awkward shapes ``Gamma(T)/T``
    takes for extreme parameters (e.g. very heavy tails pushing the
    optimal interval toward the upper bound).
    """
    if not (lo < hi):
        raise ValueError(f"invalid domain: lo={lo} must be < hi={hi}")
    guess = min(max(guess, lo * 1.01), hi * 0.99)
    # bracketing may probe outside (lo, hi); the *same* clamped objective
    # must drive the golden-section refinement, otherwise refinement can
    # evaluate the raw function outside its domain with values
    # inconsistent with the bracket's (the bracket was built on the
    # clamped landscape)
    clamped = _Clamped(func, lo, hi)
    try:
        second = min(guess * 1.5 + 1e-9, hi * 0.999)
        if second <= guess:
            second = (guess + hi) / 2.0
        bracket = bracket_minimum(clamped, guess, second)
        result = golden_section_minimize(clamped, bracket, rel_tol=rel_tol)
        x = min(max(result.x, lo), hi)
        # exact comparison is correct: min/max return result.x unchanged
        # whenever it already lies inside [lo, hi]
        if x != result.x:  # reprolint: ignore[RL002]
            # abscissa strayed into the clamped plateau: its objective
            # value is by construction func(clamp(x)), so only x moves
            result = GoldenSectionResult(
                x=x, fx=result.fx, iterations=result.iterations, converged=result.converged
            )
        return result
    except (BracketError, ValueError, OverflowError):
        pass
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.grid_fallbacks")
    return _grid_then_golden(func, lo=lo, hi=hi, rel_tol=rel_tol, grid_points=grid_points)


class _Clamped:
    """Clamp the argument of ``func`` into ``[lo, hi]``.

    Bracketing may probe outside the feasible domain; clamping keeps the
    objective well defined there while preserving the interior landscape.
    """

    __slots__ = ("func", "lo", "hi")

    def __init__(self, func: Callable[[float], float], lo: float, hi: float) -> None:
        self.func = func
        self.lo = lo
        self.hi = hi

    def __call__(self, x: float) -> float:
        return self.func(min(max(x, self.lo), self.hi))


def _grid_then_golden(
    func: Callable[[float], float],
    *,
    lo: float,
    hi: float,
    rel_tol: float,
    grid_points: int,
) -> GoldenSectionResult:
    """Log-spaced grid scan followed by golden-section refinement."""
    log_lo, log_hi = math.log(lo), math.log(hi)
    xs = [math.exp(log_lo + (log_hi - log_lo) * i / (grid_points - 1)) for i in range(grid_points)]
    fs = [func(x) for x in xs]
    best = min(range(len(xs)), key=lambda i: fs[i] if math.isfinite(fs[i]) else math.inf)
    if not math.isfinite(fs[best]):
        raise BracketError("objective is non-finite over the entire search grid")
    if 0 < best < len(xs) - 1 and fs[best] <= fs[best - 1] and fs[best] <= fs[best + 1]:
        # A strict interior bracket exists only if a neighbour is strictly
        # larger; on flat plateaus just return the grid point.
        if fs[best] < fs[best - 1] or fs[best] < fs[best + 1]:
            bracket = Bracket(
                a=xs[best - 1],
                b=xs[best],
                c=xs[best + 1],
                fa=fs[best - 1],
                fb=fs[best],
                fc=fs[best + 1],
            )
            return golden_section_minimize(func, bracket, rel_tol=rel_tol)
    return GoldenSectionResult(x=xs[best], fx=fs[best], iterations=grid_points, converged=True)
