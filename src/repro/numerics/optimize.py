"""Scalar minimisation: bracketing, Golden Section Search, and the
vectorised golden/Brent hybrid.

The paper minimises the expected overhead ratio ``Gamma(T)/T`` with the
Golden Section Search "as implemented in Numerical Recipes".  This module
provides a faithful, dependency-free implementation plus the fast path
the schedule solver actually runs:

* :func:`bracket_minimum` -- the ``mnbrak`` procedure: starting from two
  abscissae it walks downhill (with parabolic extrapolation and a golden
  ratio growth limit) until it finds a triple ``a < b < c`` with
  ``f(b) <= f(a)`` and ``f(b) <= f(c)``.
* :func:`golden_section_minimize` -- classic golden-section refinement of
  a bracketing triple down to a requested relative tolerance.
* :func:`brent_minimize` -- Brent refinement of a bracketing triple:
  successive parabolic interpolation with golden-section fallback steps,
  superlinear near the smooth minima ``Gamma(T)/T`` has in practice
  (roughly a third of the function evaluations golden section needs).
* :func:`minimize_positive_scalar` -- the legacy entry point: bracketing
  seeded from a caller-supplied initial guess, golden-section
  refinement, and a coarse grid scan fallback for awkward shapes.
* :func:`minimize_positive_hybrid` -- the fast path: one *batched*
  log-grid evaluation pass brackets the minimum (consuming a vectorised
  objective such as ``MarkovIntervalModel.gamma_batch``), an optional
  warm-start bracket skips the grid entirely when a nearby solution is
  known, Brent refines, and a final parabolic polish pins the abscissa
  to ~1e-10 relative so warm/cold/cached solves agree far inside the
  1e-9 equivalence budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.obs.metrics import active as _metrics

#: the array type batched objectives traffic in (matches
#: ``repro.distributions.base.FloatArray`` without importing it: the
#: distribution layer already depends on :mod:`repro.numerics`)
FloatArray = NDArray[np.float64]

__all__ = [
    "Bracket",
    "BracketError",
    "GoldenSectionResult",
    "BatchObjective",
    "bracket_minimum",
    "brent_minimize",
    "golden_section_minimize",
    "minimize_positive_scalar",
    "minimize_positive_hybrid",
]

#: a vectorised objective: one call evaluates a whole array of abscissae
BatchObjective = Callable[[FloatArray], FloatArray]

#: golden ratio section constants
_GOLD = 1.618033988749895
_CGOLD = 0.3819660112501051  # 2 - phi: the golden section fraction
_TINY = 1e-21
_GLIMIT = 100.0


class BracketError(RuntimeError):
    """Raised when a bracketing triple around a minimum cannot be found."""


@dataclass(frozen=True)
class Bracket:
    """A bracketing triple ``a < b < c`` with ``f(b) <= min(f(a), f(c))``."""

    a: float
    b: float
    c: float
    fa: float
    fb: float
    fc: float

    def __post_init__(self) -> None:
        if not (self.a < self.b < self.c):
            raise ValueError(f"bracket abscissae must be ordered: {self}")
        if self.fb > self.fa or self.fb > self.fc:
            raise ValueError(f"bracket does not contain a minimum: {self}")


@dataclass(frozen=True)
class GoldenSectionResult:
    """Result of a golden-section minimisation."""

    x: float
    fx: float
    iterations: int
    converged: bool


def bracket_minimum(
    func: Callable[[float], float],
    a: float,
    b: float,
    *,
    grow_limit: float = _GLIMIT,
    max_iter: int = 200,
) -> Bracket:
    """Bracket a minimum of ``func`` starting from abscissae ``a`` and ``b``.

    This follows the ``mnbrak`` routine of Numerical Recipes: the points
    are ordered downhill, then the search steps by golden-ratio
    magnification (with parabolic extrapolation capped at ``grow_limit``
    times the current step) until the function value rises again.

    Raises
    ------
    BracketError
        If no rise in the function is observed within ``max_iter`` steps
        (e.g. the function decreases monotonically over the reachable
        range).
    """
    fa = func(a)
    fb = func(b)
    if fb > fa:  # ensure we walk downhill from a to b
        a, b = b, a
        fa, fb = fb, fa
    c = b + _GOLD * (b - a)
    fc = func(c)
    iterations = 0
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.bracket.calls")
    while fb >= fc:
        iterations += 1
        if iterations > max_iter:
            if reg is not None:
                reg.inc("numerics.bracket.expansions", iterations)
                reg.inc("numerics.bracket.failures")
            raise BracketError(
                f"could not bracket a minimum within {max_iter} expansions "
                f"(last triple: ({a}, {b}, {c}))"
            )
        # Parabolic extrapolation from a, b, c.
        r = (b - a) * (fb - fc)
        q = (b - c) * (fb - fa)
        denom = 2.0 * math.copysign(max(abs(q - r), _TINY), q - r)
        u = b - ((b - c) * q - (b - a) * r) / denom
        ulim = b + grow_limit * (c - b)
        if (b - u) * (u - c) > 0.0:  # u between b and c
            fu = func(u)
            if fu < fc:  # minimum between b and c
                a, b = b, u
                fa, fb = fb, fu
                break
            if fu > fb:  # minimum between a and u
                c, fc = u, fu
                break
            u = c + _GOLD * (c - b)  # parabolic fit useless; golden step
            fu = func(u)
        elif (c - u) * (u - ulim) > 0.0:  # u between c and the limit
            fu = func(u)
            if fu < fc:
                b, c, u = c, u, u + _GOLD * (u - c)
                fb, fc, fu = fc, fu, func(u)
        elif (u - ulim) * (ulim - c) >= 0.0:  # clamp to the limit
            u = ulim
            fu = func(u)
        else:  # reject parabolic u; golden step
            u = c + _GOLD * (c - b)
            fu = func(u)
        a, b, c = b, c, u
        fa, fb, fc = fb, fc, fu
    if a > c:
        a, c = c, a
        fa, fc = fc, fa
    if reg is not None:
        reg.inc("numerics.bracket.expansions", iterations)
    return Bracket(a=a, b=b, c=c, fa=fa, fb=fb, fc=fc)


def golden_section_minimize(
    func: Callable[[float], float],
    bracket: Bracket,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-10,
    max_iter: int = 500,
) -> GoldenSectionResult:
    """Refine a bracketing triple with Golden Section Search.

    Parameters
    ----------
    func:
        The scalar objective.
    bracket:
        A :class:`Bracket` as produced by :func:`bracket_minimum`.
    rel_tol, abs_tol:
        Convergence when the bracket width drops below
        ``rel_tol * (|x1| + |x2|) / 2 + abs_tol``.
    max_iter:
        Hard cap on function evaluations.
    """
    x0, x3 = bracket.a, bracket.c
    if abs(bracket.c - bracket.b) > abs(bracket.b - bracket.a):
        x1 = bracket.b
        x2 = bracket.b + _CGOLD * (bracket.c - bracket.b)
        f1 = bracket.fb
        f2 = func(x2)
    else:
        x2 = bracket.b
        x1 = bracket.b - _CGOLD * (bracket.b - bracket.a)
        f2 = bracket.fb
        f1 = func(x1)
    iterations = 0
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.golden.calls")
    while abs(x3 - x0) > rel_tol * (abs(x1) + abs(x2)) / 2.0 + abs_tol:
        iterations += 1
        if iterations > max_iter:
            x, fx = (x1, f1) if f1 < f2 else (x2, f2)
            if reg is not None:
                reg.inc("numerics.golden.iterations", iterations)
            return GoldenSectionResult(x=x, fx=fx, iterations=iterations, converged=False)
        if f2 < f1:
            x0 = x1
            x1, x2 = x2, x2 + _CGOLD * (x3 - x2)
            f1, f2 = f2, func(x2)
        else:
            x3 = x2
            x2, x1 = x1, x1 - _CGOLD * (x1 - x0)
            f2, f1 = f1, func(x1)
    if reg is not None:
        reg.inc("numerics.golden.iterations", iterations)
    if f1 < f2:
        return GoldenSectionResult(x=x1, fx=f1, iterations=iterations, converged=True)
    return GoldenSectionResult(x=x2, fx=f2, iterations=iterations, converged=True)


def minimize_positive_scalar(
    func: Callable[[float], float],
    *,
    guess: float,
    lo: float = 1e-6,
    hi: float = 1e9,
    rel_tol: float = 1e-8,
    grid_points: int = 64,
) -> GoldenSectionResult:
    """Minimise ``func`` over the open interval ``(lo, hi)``.

    The strategy is the one used throughout the checkpoint optimizer:

    1. try to bracket a minimum around ``guess`` with
       :func:`bracket_minimum` and refine it with golden section;
    2. if bracketing fails (monotone objective, plateau, minimum pinned
       at a boundary), fall back to a log-spaced grid scan of
       ``grid_points`` abscissae followed by golden-section refinement of
       the best grid cell.

    This makes the optimizer robust to the awkward shapes ``Gamma(T)/T``
    takes for extreme parameters (e.g. very heavy tails pushing the
    optimal interval toward the upper bound).
    """
    if not (lo < hi):
        raise ValueError(f"invalid domain: lo={lo} must be < hi={hi}")
    guess = min(max(guess, lo * 1.01), hi * 0.99)
    # bracketing may probe outside (lo, hi); the *same* clamped objective
    # must drive the golden-section refinement, otherwise refinement can
    # evaluate the raw function outside its domain with values
    # inconsistent with the bracket's (the bracket was built on the
    # clamped landscape)
    clamped = _Clamped(func, lo, hi)
    try:
        second = min(guess * 1.5 + 1e-9, hi * 0.999)
        if second <= guess:
            second = (guess + hi) / 2.0
        bracket = bracket_minimum(clamped, guess, second)
        result = golden_section_minimize(clamped, bracket, rel_tol=rel_tol)
        x = min(max(result.x, lo), hi)
        # exact comparison is correct: min/max return result.x unchanged
        # whenever it already lies inside [lo, hi]
        if x != result.x:  # reprolint: ignore[RL002]
            # abscissa strayed into the clamped plateau: its objective
            # value is by construction func(clamp(x)), so only x moves
            result = GoldenSectionResult(
                x=x, fx=result.fx, iterations=result.iterations, converged=result.converged
            )
        return result
    except (BracketError, ValueError, OverflowError):
        pass
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.grid_fallbacks")
    return _grid_then_golden(func, lo=lo, hi=hi, rel_tol=rel_tol, grid_points=grid_points)


class _Clamped:
    """Clamp the argument of ``func`` into ``[lo, hi]``.

    Bracketing may probe outside the feasible domain; clamping keeps the
    objective well defined there while preserving the interior landscape.
    """

    __slots__ = ("func", "lo", "hi")

    def __init__(self, func: Callable[[float], float], lo: float, hi: float) -> None:
        self.func = func
        self.lo = lo
        self.hi = hi

    def __call__(self, x: float) -> float:
        return self.func(min(max(x, self.lo), self.hi))


def _grid_then_golden(
    func: Callable[[float], float],
    *,
    lo: float,
    hi: float,
    rel_tol: float,
    grid_points: int,
) -> GoldenSectionResult:
    """Log-spaced grid scan followed by golden-section refinement."""
    log_lo, log_hi = math.log(lo), math.log(hi)
    xs = [math.exp(log_lo + (log_hi - log_lo) * i / (grid_points - 1)) for i in range(grid_points)]
    fs = [func(x) for x in xs]
    best = min(range(len(xs)), key=lambda i: fs[i] if math.isfinite(fs[i]) else math.inf)
    if not math.isfinite(fs[best]):
        raise BracketError("objective is non-finite over the entire search grid")
    if 0 < best < len(xs) - 1 and fs[best] <= fs[best - 1] and fs[best] <= fs[best + 1]:
        # A strict interior bracket exists only if a neighbour is strictly
        # larger; on flat plateaus just return the grid point.
        if fs[best] < fs[best - 1] or fs[best] < fs[best + 1]:
            bracket = Bracket(
                a=xs[best - 1],
                b=xs[best],
                c=xs[best + 1],
                fa=fs[best - 1],
                fb=fs[best],
                fc=fs[best + 1],
            )
            return golden_section_minimize(func, bracket, rel_tol=rel_tol)
    return GoldenSectionResult(x=xs[best], fx=fs[best], iterations=grid_points, converged=True)


# ----------------------------------------------------------------------
# the vectorised golden/Brent hybrid fast path
# ----------------------------------------------------------------------

_ZEPS = 1e-18


def brent_minimize(
    func: Callable[[float], float],
    bracket: Bracket,
    *,
    rel_tol: float = 1e-8,
    abs_tol: float = 1e-10,
    max_iter: int = 200,
) -> GoldenSectionResult:
    """Refine a bracketing triple with Brent's method.

    Successive parabolic interpolation through the three best points,
    falling back to a golden-section step whenever the parabola is
    uncooperative (the Numerical Recipes ``brent`` safeguards).  For the
    smooth, locally-quadratic minima of ``Gamma(T)/T`` this converges
    superlinearly -- typically 7-12 evaluations against golden section's
    ~30 at the same tolerance.
    """
    a, b = bracket.a, bracket.c
    x = w = v = bracket.b
    fx = fw = fv = bracket.fb
    d = e = 0.0
    iterations = 0
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.brent.calls")
    for _ in range(max_iter):
        xm = 0.5 * (a + b)
        tol1 = rel_tol * abs(x) + max(abs_tol, _ZEPS)
        tol2 = 2.0 * tol1
        if abs(x - xm) <= tol2 - 0.5 * (b - a):
            if reg is not None:
                reg.inc("numerics.brent.iterations", iterations)
            return GoldenSectionResult(x=x, fx=fx, iterations=iterations, converged=True)
        use_golden = True
        if abs(e) > tol1:
            # fit a parabola through (v, w, x)
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            etemp = e
            e = d
            if not (abs(p) >= abs(0.5 * q * etemp) or p <= q * (a - x) or p >= q * (b - x)):
                # parabolic step accepted
                d = p / q
                u = x + d
                if u - a < tol2 or b - u < tol2:
                    d = math.copysign(tol1, xm - x)
                use_golden = False
        if use_golden:
            e = (a - x) if x >= xm else (b - x)
            d = _CGOLD * e
        u = x + d if abs(d) >= tol1 else x + math.copysign(tol1, d)
        fu = func(u)
        iterations += 1
        if fu <= fx:
            if u >= x:
                a = x
            else:
                b = x
            v, w, x = w, x, u
            fv, fw, fx = fw, fx, fu
        else:
            if u < x:
                a = u
            else:
                b = u
            if fu <= fw or w == x:  # reprolint: ignore[RL002]
                v, w = w, u
                fv, fw = fw, fu
            elif fu <= fv or v == x or v == w:  # reprolint: ignore[RL002]
                v, fv = u, fu
    if reg is not None:
        reg.inc("numerics.brent.iterations", iterations)
    return GoldenSectionResult(x=x, fx=fx, iterations=iterations, converged=False)


def _eval_batch(
    func_batch: BatchObjective | None,
    func: Callable[[float], float],
    xs: Sequence[float],
) -> list[float]:
    """One evaluation pass over ``xs``: vectorised when a batched
    objective is available, scalar otherwise.  Returns plain floats."""
    reg = _metrics()
    if reg is not None:
        # a vectorised call is one pass however many points it covers; a
        # scalar fallback pays one pass per point
        reg.inc("numerics.hybrid.passes", 1 if func_batch is not None else len(xs))
        reg.inc("numerics.hybrid.points", len(xs))
    if func_batch is not None:
        arr = func_batch(np.asarray(xs, dtype=np.float64))
        return [float(v) for v in np.asarray(arr, dtype=np.float64).ravel()]
    return [func(x) for x in xs]


def _count_scalar_evals(n: int) -> None:
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.hybrid.passes", n)
        reg.inc("numerics.hybrid.points", n)


class _CountedScalar:
    """Wrap the scalar objective so Brent's evaluations are counted as
    hybrid evaluation passes (one point each)."""

    __slots__ = ("func",)

    def __init__(self, func: Callable[[float], float]) -> None:
        self.func = func

    def __call__(self, x: float) -> float:
        _count_scalar_evals(1)
        return self.func(x)


def _parabolic_polish(
    func: Callable[[float], float],
    func_batch: BatchObjective | None,
    x: float,
    fx: float,
    *,
    lo: float,
    hi: float,
    h_rel: float = 1e-3,
) -> tuple[float, float]:
    """Pin the minimiser with one symmetric three-point parabola fit.

    Bracket-based refinement localises the abscissa no better than
    ``sqrt(eps)`` relative (the objective is flat to round-off there),
    so independently warm- and cold-started solves would disagree at the
    ~1e-6 level.  The vertex of the parabola through ``x(1 -+ h)``
    depends on the fit centre only at second order, so solves entering
    the polish from different Brent end points (offset ~``rel_tol * x``
    from each other) exit on the same vertex to ~1e-10 relative -- which
    is what lets cached, warm and cold solves agree to <= 1e-9.

    The stencil width trades systematic error (the cubic term
    contributes ``O(h^2)`` bias -- but the *same* bias for every entry
    path, so it cancels in equivalence comparisons) against noise
    amplification ``~eta / (kappa * h)``, where ``kappa`` is the
    dimensionless curvature ``f'' x^2 / f`` and ``eta`` the objective's
    relative evaluation noise.  ``Gamma(T)/T`` is built from conditioned
    cdf / partial-expectation differences (``eta ~ 1e-14``, well above
    one ulp) and is extremely flat near deep-tail optima
    (``kappa ~ 0.1``), so ``h = 1e-3`` is needed to hold the measured
    vertex scatter near 1e-10 relative -- ``h = 1e-5`` sits two decades
    higher and would blow the 1e-9 budget.
    """
    x0, x2 = x * (1.0 - h_rel), x * (1.0 + h_rel)
    if not (lo <= x0 and x2 <= hi):
        return x, fx
    f0, f2 = _eval_batch(func_batch, func, [x0, x2])
    denom = (f0 - fx) + (f2 - fx)
    if not (math.isfinite(denom) and denom > 0.0):
        return x, fx  # stencil not convex: leave the abscissa alone
    shift = 0.5 * h_rel * x * (f0 - f2) / denom
    if abs(shift) >= h_rel * x:
        return x, fx  # vertex escaped the stencil: distrust it
    v = x + shift
    fv = func(v)
    _count_scalar_evals(1)
    if math.isfinite(fv) and fv <= max(f0, f2):
        return v, fv
    return x, fx


def minimize_positive_hybrid(
    func: Callable[[float], float],
    *,
    func_batch: BatchObjective | None = None,
    guess: float,
    warm_start: float | None = None,
    lo: float = 1e-6,
    hi: float = 1e9,
    rel_tol: float = 1e-8,
    grid_points: int = 48,
    polish: bool = True,
) -> GoldenSectionResult:
    """Minimise ``func`` over ``(lo, hi)`` -- the solver fast path.

    Strategy, in order:

    1. **Warm start** (when ``warm_start`` is given): evaluate the
       narrow triple ``warm / k, warm, warm * k`` in one batched pass;
       if it brackets, Brent-refine it directly.  A second, wider triple
       is tried before giving up.  When refinement would run into a
       bracket edge the warm path is abandoned for the full cold path,
       so a stale seed can slow the solve but never corrupt it.
    2. **Cold path**: one batched log-spaced grid pass over
       ``[lo, hi]`` replaces the sequential ``mnbrak`` walk; the best
       grid cell becomes the bracket and Brent refines it.
    3. **Polish**: a final symmetric parabola fit pins the abscissa to
       ~1e-10 relative (see :func:`_parabolic_polish`).

    Falls back to :func:`minimize_positive_scalar` when the grid finds
    no interior minimum (monotone objectives, edge plateaus), so its
    robustness guarantees carry over unchanged.
    """
    if not (lo < hi):
        raise ValueError(f"invalid domain: lo={lo} must be < hi={hi}")
    reg = _metrics()
    if reg is not None:
        reg.inc("numerics.hybrid.calls")
    clamped = _Clamped(func, lo, hi)
    counted = _CountedScalar(clamped)

    # -- 1. warm start -------------------------------------------------
    if warm_start is not None and lo < warm_start < hi:
        for widen in (1.3, 4.0):
            xs = [warm_start / widen, warm_start, warm_start * widen]
            if xs[0] <= lo or xs[2] >= hi:
                break  # seed too close to the domain edge: go cold
            fs = _eval_batch(func_batch, clamped, xs)
            if all(math.isfinite(f) for f in fs) and fs[1] <= fs[0] and fs[1] <= fs[2] and (
                fs[1] < fs[0] or fs[1] < fs[2]
            ):
                if reg is not None:
                    reg.inc("opt.warm.hits")
                bracket = Bracket(a=xs[0], b=xs[1], c=xs[2], fa=fs[0], fb=fs[1], fc=fs[2])
                result = brent_minimize(counted, bracket, rel_tol=rel_tol)
                if polish:
                    x, fx = _parabolic_polish(clamped, func_batch, result.x, result.fx, lo=lo, hi=hi)
                    return GoldenSectionResult(
                        x=x, fx=fx, iterations=result.iterations, converged=result.converged
                    )
                return result
        if reg is not None:
            reg.inc("opt.warm.fallbacks")

    # -- 2. cold path: batched grid bracket + Brent --------------------
    log_lo, log_hi = math.log(lo), math.log(hi)
    xs = [math.exp(log_lo + (log_hi - log_lo) * i / (grid_points - 1)) for i in range(grid_points)]
    fs = _eval_batch(func_batch, clamped, xs)
    finite = [f if math.isfinite(f) else math.inf for f in fs]
    best = min(range(len(xs)), key=lambda i: finite[i])
    interior = 0 < best < len(xs) - 1
    if (
        math.isfinite(finite[best])
        and interior
        and finite[best] <= finite[best - 1]
        and finite[best] <= finite[best + 1]
        and (finite[best] < finite[best - 1] or finite[best] < finite[best + 1])
    ):
        bracket = Bracket(
            a=xs[best - 1],
            b=xs[best],
            c=xs[best + 1],
            fa=finite[best - 1],
            fb=finite[best],
            fc=finite[best + 1],
        )
        result = brent_minimize(counted, bracket, rel_tol=rel_tol)
        if polish:
            x, fx = _parabolic_polish(clamped, func_batch, result.x, result.fx, lo=lo, hi=hi)
            return GoldenSectionResult(
                x=x, fx=fx, iterations=result.iterations, converged=result.converged
            )
        return result

    # -- 3. awkward shapes: the legacy robust path ----------------------
    if reg is not None:
        reg.inc("numerics.hybrid.cold_fallbacks")
    return minimize_positive_scalar(
        func, guess=guess, lo=lo, hi=hi, rel_tol=rel_tol, grid_points=grid_points
    )
