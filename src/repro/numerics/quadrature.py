"""Numerical quadrature used by the checkpoint-interval Markov model.

The cost terms ``K02`` and ``K22`` of the Markov model are truncated
first moments ``int_0^x t f(t) dt``.  For the three families the paper
uses (exponential, Weibull, hyperexponential) we have closed forms, but
the library accepts *any* :class:`~repro.distributions.base.AvailabilityDistribution`,
so a generic quadrature fallback is required.  Two methods are provided:

* :func:`adaptive_simpson` -- recursive adaptive Simpson's rule with a
  per-panel error estimate; robust on smooth densities with localized
  mass.
* :func:`gauss_legendre` -- fixed-order composite Gauss-Legendre,
  vectorised over NumPy arrays of integrand evaluations; this is the hot
  path used when many partial expectations are evaluated at once.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Callable

import numpy as np

__all__ = [
    "QuadratureError",
    "adaptive_simpson",
    "gauss_legendre",
    "gauss_legendre_nodes",
]


class QuadratureError(RuntimeError):
    """Raised when an adaptive quadrature fails to converge."""


def adaptive_simpson(
    func: Callable[[float], float],
    a: float,
    b: float,
    *,
    tol: float = 1e-10,
    max_depth: int = 48,
) -> float:
    """Integrate ``func`` over ``[a, b]`` with adaptive Simpson's rule.

    The classic recursive scheme: each panel is split in half until the
    Richardson error estimate ``|S_left + S_right - S_whole| / 15`` drops
    below the panel's share of ``tol``.

    Raises
    ------
    QuadratureError
        If the recursion exceeds ``max_depth`` without meeting the
        tolerance (usually a sign of a non-integrable singularity).
    """
    # reprolint: ignore[RL002] - identical endpoints give an exactly-empty interval; close-but-unequal ones integrate normally
    if a == b:
        return 0.0
    if a > b:
        return -adaptive_simpson(func, b, a, tol=tol, max_depth=max_depth)
    fa, fb = func(a), func(b)
    m = 0.5 * (a + b)
    fm = func(m)
    whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    return _simpson_recurse(func, a, b, fa, fb, m, fm, whole, tol, max_depth)


def _simpson_recurse(
    func: Callable[[float], float],
    a: float,
    b: float,
    fa: float,
    fb: float,
    m: float,
    fm: float,
    whole: float,
    tol: float,
    depth: int,
) -> float:
    lm = 0.5 * (a + m)
    rm = 0.5 * (m + b)
    flm, frm = func(lm), func(rm)
    left = (m - a) / 6.0 * (fa + 4.0 * flm + fm)
    right = (b - m) / 6.0 * (fm + 4.0 * frm + fb)
    err = left + right - whole
    if abs(err) <= 15.0 * tol:
        return left + right + err / 15.0
    if depth <= 0:
        raise QuadratureError(
            f"adaptive Simpson failed to converge on [{a}, {b}] (residual {err:.3e})"
        )
    half = tol / 2.0
    return _simpson_recurse(func, a, m, fa, fm, lm, flm, left, half, depth - 1) + _simpson_recurse(
        func, m, b, fm, fb, rm, frm, right, half, depth - 1
    )


@lru_cache(maxsize=32)
def gauss_legendre_nodes(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``order``-point Gauss-Legendre nodes/weights on [-1, 1].

    Cached because the checkpoint optimizer calls this for every generic
    partial-expectation evaluation.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


def gauss_legendre(
    func: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    *,
    order: int = 40,
    panels: int = 4,
) -> float:
    """Composite Gauss-Legendre quadrature of a vectorised integrand.

    ``func`` must accept and return NumPy arrays.  The interval is split
    into ``panels`` equal panels, each integrated with an ``order``-point
    rule; all integrand evaluations happen in a single vectorised call.
    """
    # reprolint: ignore[RL002] - identical endpoints give an exactly-empty interval; close-but-unequal ones integrate normally
    if a == b:
        return 0.0
    sign = 1.0
    if a > b:
        a, b = b, a
        sign = -1.0
    nodes, weights = gauss_legendre_nodes(order)
    edges = np.linspace(a, b, panels + 1)
    lows = edges[:-1]
    half_widths = 0.5 * (edges[1:] - lows)
    mids = lows + half_widths
    # shape (panels, order): all abscissae at once
    xs = mids[:, None] + half_widths[:, None] * nodes[None, :]
    values = func(xs.ravel()).reshape(xs.shape)
    return sign * float(np.sum(half_widths * (values @ weights)))
