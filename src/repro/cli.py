"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro-checkpoint table1 --machines 80 --workers 8
    repro-checkpoint fig4
    repro-checkpoint table4 --horizon-days 2
    repro-checkpoint validate
    repro-checkpoint all --machines 40 --workers 8 --out results.txt

(The module also runs as ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING, Any, TextIO

import numpy as np

from repro.experiments.live_study import run_live_study
from repro.experiments.study import run_simulation_study
from repro.experiments.synthetic_study import run_synthetic_study
from repro.experiments.validation import validate_simulation
from repro.traces.synthetic import SyntheticPoolConfig

if TYPE_CHECKING:  # tool imports stay lazy at runtime (see _dispatch_tool)
    from repro.experiments.study import SimulationStudy
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import TraceRecorder as _TraceRecorder

__all__ = ["TOOL_COMMANDS", "build_parser", "main"]

_SWEEP_COMMANDS = ("table1", "table3", "fig3", "fig4")
_LIVE_COMMANDS = ("table4", "table5")

#: tool subcommands with their own option surfaces, dispatched before
#: the experiment parser sees the arguments.  Keys appear in ``--help``
#: (tests enforce this); values are one-line summaries.
TOOL_COMMANDS: dict[str, str] = {
    "lint": "run the reprolint static-analysis pass (docs/ANALYSIS.md)",
    "report": "pretty-print or --diff --metrics run reports",
    "trace": "inspect --trace event logs: summary/filter/timeline/export",
    "serve": "run the async schedule-query daemon (docs/SERVING.md)",
    "bench-serve": "load-generate against the daemon; emits BENCH_serve.json",
}


def _tool_epilog() -> str:
    lines = ["tool subcommands (each has its own --help):"]
    lines += [f"  {name:<12} {summary}" for name, summary in TOOL_COMMANDS.items()]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint",
        description=(
            "Reproduce the tables and figures of 'Minimizing the Network "
            "Overhead of Checkpointing in Cycle-harvesting Cluster "
            "Environments' (CLUSTER 2005)."
        ),
        epilog=_tool_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "command",
        choices=(
            *_SWEEP_COMMANDS,
            "table2",
            *_LIVE_COMMANDS,
            "validate",
            "parallel",
            "gang",
            "fitstudy",
            "convergence",
            "sensitivity",
            "storage-study",
            "all",
        ),
        help=(
            "which artefact to regenerate ('parallel'/'gang' run the "
            "future-work extensions, 'fitstudy' the §3.1 goodness-of-fit "
            "table, 'convergence' the efficiency-convergence diagnostic, "
            "'storage-study' the incremental/compressed checkpoint storage "
            "sweep at the Table 4 campus point); the tool subcommands "
            "below (lint, report, trace, serve, bench-serve) have their "
            "own option surfaces"
        ),
    )
    parser.add_argument("--machines", type=int, default=120, help="pool size for the sweep experiments")
    parser.add_argument("--observations", type=int, default=125, help="observations per machine trace")
    parser.add_argument("--workers", type=int, default=1, help="parallel worker processes for the sweep")
    parser.add_argument("--seed", type=int, default=None, help="override the default experiment seed")
    parser.add_argument("--horizon-days", type=float, default=2.0, help="live-experiment horizon (Tables 4/5, validate)")
    parser.add_argument("--live-machines", type=int, default=48, help="fleet size for the live experiments")
    parser.add_argument("--synthetic-points", type=int, default=5000, help="trace length for Table 2")
    parser.add_argument("--out", type=str, default=None, help="also write the rendered output to this file")
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "enable the observability layer and write a structured JSON "
            "run report (metric catalogue: docs/OBSERVABILITY.md) to PATH; "
            "inspect it later with 'repro report PATH'"
        ),
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "enable event tracing and write a JSONL trace (schema "
            "repro.obs.trace/1) to PATH; inspect it later with "
            "'repro trace summary|timeline|export PATH'"
        ),
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer capacity for --trace (default 1,000,000 events)",
    )
    parser.add_argument(
        "--trace-sample",
        action="append",
        default=None,
        metavar="CAT=N",
        help=(
            "keep 1-in-N events of a trace category (repeatable, e.g. "
            "--trace-sample engine.step=500); overrides the default "
            "sampling table"
        ),
    )
    return parser


def _report_main(argv: list[str], stdout: TextIO | None = None) -> int:
    """``repro report FILE [--json]`` / ``repro report --diff A B``."""
    parser = argparse.ArgumentParser(
        prog="repro-checkpoint report",
        description=(
            "Pretty-print a JSON run report produced by --metrics, or "
            "diff two of them."
        ),
    )
    parser.add_argument(
        "path", nargs="?", default=None, help="report file written by --metrics"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="re-emit the report (or diff) as canonical JSON instead of text",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="diff two run reports (per-metric absolute and relative deltas)",
    )
    args = parser.parse_args(argv)
    sink = stdout if stdout is not None else sys.stdout
    from repro.obs.report import (
        diff_reports,
        dumps_report,
        load_report,
        render_diff,
        render_report,
    )

    if args.diff is not None:
        report_a = load_report(args.diff[0])
        report_b = load_report(args.diff[1])
        try:
            diff = diff_reports(report_a, report_b)
        except ValueError as exc:
            print(f"error: {exc}", file=sink)
            return 2
        import json as _json

        print(
            _json.dumps(diff, indent=2, sort_keys=True) if args.json else render_diff(diff),
            file=sink,
        )
        return 0
    if args.path is None:
        parser.error("a report path (or --diff A B) is required")
    report = load_report(args.path)
    print(dumps_report(report) if args.json else render_report(report), file=sink)
    return 0


def _emit(text: str, out_path: str | None, sink: TextIO) -> None:
    print(text, file=sink)
    if out_path:
        with open(out_path, "a") as fh:
            fh.write(text + "\n")


def _dispatch_tool(command: str, argv: list[str], stdout: TextIO | None) -> int:
    """Run one :data:`TOOL_COMMANDS` entry (imports stay lazy: the serve
    and analysis stacks must not burden a plain table regeneration)."""
    if command == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv, stdout=stdout)
    if command == "report":
        return _report_main(argv, stdout=stdout)
    if command == "trace":
        from repro.obs.tracing.cli import main as trace_main

        return trace_main(argv, stdout=stdout)
    if command == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv, stdout=stdout)
    if command == "bench-serve":
        from repro.serve.cli import bench_main

        return bench_main(argv, stdout=stdout)
    raise ValueError(f"unregistered tool command: {command!r}")  # pragma: no cover


def main(argv: list[str] | None = None, *, stdout: TextIO | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in TOOL_COMMANDS:
        # tool front ends own their option surface; dispatch before the
        # experiment parser sees the arguments
        return _dispatch_tool(argv[0], argv[1:], stdout)
    args = build_parser().parse_args(argv)
    sink = stdout if stdout is not None else sys.stdout
    if args.out:
        open(args.out, "w").close()  # truncate
    registry: MetricsRegistry | None = None
    if args.metrics:
        from repro.obs.metrics import enable

        registry = enable()
    recorder: _TraceRecorder | None = None
    if args.trace:
        from repro.obs.tracing import TraceRecorder
        from repro.obs.tracing import enable as enable_trace
        from repro.obs.tracing.recorder import DEFAULT_SAMPLING

        sampling = dict(DEFAULT_SAMPLING)
        for spec in args.trace_sample or ():
            cat, sep, stride = spec.partition("=")
            if not sep or not stride.isdigit() or int(stride) < 1:
                raise SystemExit(
                    f"error: --trace-sample expects CAT=N with N >= 1, got {spec!r}"
                )
            sampling[cat] = int(stride)
        kwargs: dict[str, Any] = {"sampling": sampling}
        if args.trace_limit:
            kwargs["max_events"] = args.trace_limit
        recorder = enable_trace(TraceRecorder(**kwargs))
    started = time.time()

    def emit(text: str) -> None:
        _emit(text, args.out, sink)

    def wants(*names: str) -> bool:
        return args.command in names or args.command == "all"

    study: SimulationStudy | None = None
    if wants(*_SWEEP_COMMANDS):
        pool_config = SyntheticPoolConfig(
            n_machines=args.machines, n_observations=args.observations
        )
        study = run_simulation_study(
            pool_config=pool_config, seed=args.seed, n_workers=args.workers
        )
    if wants("table1"):
        assert study is not None
        emit(study.efficiency_table().render())
        emit("")
    if wants("fig3"):
        assert study is not None
        emit(study.efficiency_figure().render())
        emit("")
    if wants("table3"):
        assert study is not None
        emit(study.bandwidth_table().render())
        emit("")
    if wants("fig4"):
        assert study is not None
        emit(study.bandwidth_figure().render())
        emit("")

    if wants("table2"):
        synth = run_synthetic_study(
            n_points=args.synthetic_points,
            seed=args.seed if args.seed is not None else 2005,
        )
        emit(synth.table().render())
        emit("")

    live_results: dict[str, Any] = {}
    for command, location in (("table4", "campus"), ("table5", "wan")):
        if wants(command):
            overrides: dict[str, Any] = dict(
                horizon=args.horizon_days * 86400.0, n_machines=args.live_machines
            )
            if args.seed is not None:
                overrides["seed"] = args.seed
            result = run_live_study(location, **overrides)
            live_results[location] = result
            emit(result.table().render())
            emit("")

    if wants("parallel"):
        from repro.experiments.parallel_study import run_parallel_study

        parallel = run_parallel_study(
            horizon=args.horizon_days * 86400.0,
            n_machines=args.live_machines,
            seed=args.seed if args.seed is not None else 2005,
        )
        emit(parallel.table().render())
        emit("")

    if wants("gang"):
        from repro.condor.gang import GangExperimentConfig, run_gang_experiment
        from repro.experiments.format import PaperTable

        table = PaperTable(
            title="Extension — gang-scheduled job with coordinated checkpointing",
            header=["Distribution", "W", "Efficiency", "MB/Hour", "Gang failures", "Coordinated ckpts"],
            notes=["identical fleet per seed: the failure column is paired across models"],
        )
        for model in ("exponential", "weibull", "hyperexp2", "hyperexp3"):
            for width in (2, 6):
                res = run_gang_experiment(
                    GangExperimentConfig(
                        width=width,
                        model=model,
                        horizon=args.horizon_days * 86400.0,
                        n_machines=max(args.live_machines // 2, 3 * width),
                        seed=args.seed if args.seed is not None else 2005,
                    )
                )
                table.add_row(
                    [
                        model,
                        str(width),
                        f"{res.efficiency:.3f}",
                        f"{res.mb_per_hour:.0f}",
                        f"{res.n_gang_failures}",
                        f"{res.n_coordinated_checkpoints}",
                    ]
                )
        emit(table.render())
        emit("")

    if wants("fitstudy"):
        from repro.experiments.fit_study import run_fit_study
        from repro.traces.synthetic import generate_condor_pool

        pool_cfg = SyntheticPoolConfig(
            n_machines=args.machines, n_observations=args.observations
        )
        fit_rng = None if args.seed is None else np.random.default_rng(args.seed)
        fit_pool = generate_condor_pool(pool_cfg, fit_rng)
        emit(run_fit_study(fit_pool).table().render())
        emit("")

    if wants("convergence"):
        from repro.experiments.convergence import run_convergence_study
        from repro.traces.synthetic import generate_condor_pool

        pool_cfg = SyntheticPoolConfig(
            n_machines=min(args.machines, 24), n_observations=args.observations
        )
        conv_rng = None if args.seed is None else np.random.default_rng(args.seed)
        conv_pool = generate_condor_pool(pool_cfg, conv_rng)
        emit(run_convergence_study(conv_pool).figure().render())
        emit("")

    if wants("storage-study"):
        from repro.experiments.storage_study import run_storage_study

        storage = run_storage_study(
            pool_config=SyntheticPoolConfig(
                n_machines=args.machines, n_observations=args.observations
            ),
            seed=args.seed,
        )
        emit(storage.table().render())
        emit("")

    if wants("sensitivity"):
        from repro.experiments.sensitivity import run_sensitivity_study

        sens = run_sensitivity_study(
            n_points=args.synthetic_points,
            seed=args.seed if args.seed is not None else 11,
        )
        emit(sens.table().render())
        emit("")

    if wants("validate"):
        base = live_results.get("campus")
        if base is None:
            validate_overrides: dict[str, Any] = dict(
                horizon=args.horizon_days * 86400.0, n_machines=args.live_machines
            )
            if args.seed is not None:
                validate_overrides["seed"] = args.seed
            base = run_live_study("campus", **validate_overrides)
        emit(validate_simulation(base.experiment).table().render())
        emit("")

    emit(f"[done in {time.time() - started:.1f}s]")
    if registry is not None:
        from repro.obs.metrics import disable
        from repro.obs.report import build_report, write_report

        write_report(
            args.metrics,
            build_report(
                registry,
                command=args.command,
                argv=list(argv),
                duration_seconds=time.time() - started,
            ),
        )
        disable()
        emit(f"[metrics written to {args.metrics}]")
    if recorder is not None:
        from repro.obs.tracing import disable as disable_trace
        from repro.obs.tracing import write_trace

        write_trace(
            args.trace,
            recorder,
            meta={
                "command": args.command,
                "argv": list(argv),
                "duration_seconds": time.time() - started,
            },
        )
        disable_trace()
        emit(f"[trace written to {args.trace}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
