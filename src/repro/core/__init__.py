"""The paper's primary contribution: model-driven checkpoint scheduling.

* :mod:`repro.core.markov` -- Vaidya's three-state Markov model with
  arbitrary availability distributions and future-lifetime conditioning.
* :mod:`repro.core.optimizer` -- ``T_opt`` via Golden Section Search on
  ``Gamma(T)/T``.
* :mod:`repro.core.schedule` -- aperiodic ``T_opt(i)`` schedules.
* :mod:`repro.core.planner` -- the high-level fit -> schedule API.
"""

from repro.core.completion import (
    CompletionEstimate,
    expected_completion_time,
    simulate_completion_time,
)
from repro.core.markov import CheckpointCosts, IntervalTransitions, MarkovIntervalModel
from repro.core.optimizer import (
    OptimalInterval,
    default_solver_method,
    optimize_interval,
    optimize_intervals_batch,
    use_solver,
    young_approximation,
)
from repro.core.planner import CheckpointPlanner
from repro.core.schedule import CheckpointSchedule
from repro.core.solver_cache import (
    SolverCache,
    active_cache,
    configure_cache,
    use_solver_cache,
)

__all__ = [
    "CheckpointCosts",
    "CheckpointPlanner",
    "CheckpointSchedule",
    "CompletionEstimate",
    "expected_completion_time",
    "simulate_completion_time",
    "IntervalTransitions",
    "MarkovIntervalModel",
    "OptimalInterval",
    "SolverCache",
    "active_cache",
    "configure_cache",
    "default_solver_method",
    "optimize_interval",
    "optimize_intervals_batch",
    "use_solver",
    "use_solver_cache",
    "young_approximation",
]
