"""Optimal work-interval selection (``T_opt``).

The optimal interval minimises the expected overhead ratio
``Gamma(T) / T`` of the Markov model.  The objective is coercive at both
ends -- as ``T -> 0`` every interval pays the fixed checkpoint cost for
vanishing work, and as ``T -> inf`` the retry term ``K22 * P22 / P21``
blows up because a failure before ``L + R + T`` becomes certain -- so an
interior minimum exists whenever the availability distribution has
unbounded support.

Two solvers locate it:

* ``method="golden"`` -- bracketing plus Golden Section Search, exactly
  the method the paper cites from Numerical Recipes; kept as the
  reference implementation and the benchmark baseline.
* ``method="hybrid"`` (the default) -- the vectorised golden/Brent
  hybrid of :func:`repro.numerics.optimize.minimize_positive_hybrid`:
  one batched grid pass through
  :meth:`~repro.core.markov.MarkovIntervalModel.overhead_ratio_batch`
  brackets the minimum (or a warm-start triple seeded from a nearby
  solve skips the grid), Brent refines, and a parabolic polish pins
  ``T_opt`` to ~1e-10 relative so warm, cold and cached solves agree.

Solves are memoised in the process-global
:class:`~repro.core.solver_cache.SolverCache` keyed on (distribution
fingerprint, costs, age bucket); see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.core.markov import CheckpointCosts, MarkovIntervalModel
from repro.core.solver_cache import SolverCache, active_cache, use_solver_cache
from repro.distributions.base import AvailabilityDistribution, FloatArray
from repro.numerics.optimize import minimize_positive_hybrid, minimize_positive_scalar

__all__ = [
    "OptimalInterval",
    "default_solver_method",
    "optimize_interval",
    "optimize_intervals_batch",
    "use_solver",
    "young_approximation",
]

#: solver methods accepted by :func:`optimize_interval`
_METHODS = ("hybrid", "golden")

_default_method = "hybrid"

#: memo of the default ``t_max`` bound per (fingerprint, age) -- a pure
#: function of its key, recomputed identically on any miss, so clearing
#: the (bounded) memo never changes results
_TMAX_MEMO: dict[tuple[tuple[object, ...], float], float] = {}
_TMAX_MEMO_CAPACITY = 4096


def default_solver_method() -> str:
    """The process-wide solver method used when none is requested."""
    return _default_method


@contextmanager
def use_solver(
    *,
    method: str | None = None,
    cache: SolverCache | None | bool = True,
) -> Iterator[None]:
    """Temporarily override the process solver defaults.

    Parameters
    ----------
    method:
        ``"hybrid"`` or ``"golden"``; ``None`` keeps the current default.
    cache:
        ``True`` keeps the currently active cache, ``False``/``None``
        disables caching inside the block, a :class:`SolverCache`
        installs that instance.
    """
    global _default_method
    if method is not None and method not in _METHODS:
        raise ValueError(f"unknown solver method: {method!r}")
    previous = _default_method
    if method is not None:
        _default_method = method
    try:
        if cache is True:
            yield
        else:
            with use_solver_cache(cache if isinstance(cache, SolverCache) else None):
                yield
    finally:
        _default_method = previous


@dataclass(frozen=True)
class OptimalInterval:
    """The optimiser's output for one (distribution, costs, age) triple."""

    T_opt: float
    gamma: float
    overhead_ratio: float
    expected_efficiency: float
    age: float
    converged: bool


def young_approximation(distribution: AvailabilityDistribution, costs: CheckpointCosts, age: float = 0.0) -> float:
    """Young's first-order estimate ``T ~ sqrt(2 * C * MTTF)``.

    Used only to seed the bracketing search; the mean time to failure is
    taken as the mean residual life at the current uptime, which adapts
    the seed to heavy-tailed ageing.
    """
    mttf = float(distribution.mean_residual_life(age))
    if not math.isfinite(mttf) or mttf <= 0.0:
        mttf = max(distribution.mean(), 1.0)
    c = max(costs.checkpoint, 1e-6)
    return math.sqrt(2.0 * c * mttf)


def optimize_interval(
    distribution: AvailabilityDistribution,
    costs: CheckpointCosts,
    *,
    age: float = 0.0,
    t_min: float = 1e-3,
    t_max: float | None = None,
    rel_tol: float = 1e-6,
    warm_start: float | None = None,
    method: str | None = None,
) -> OptimalInterval:
    """Compute ``T_opt`` for a distribution, cost set and elapsed uptime.

    Parameters
    ----------
    distribution:
        Fitted availability model.
    costs:
        ``C``/``R``/``L`` constants.
    age:
        ``T_elapsed``: time the resource has been available already
        (ignored by the memoryless exponential).
    t_min, t_max:
        Search bounds for the work interval.  ``t_max`` defaults to
        ``1e4`` times the mean residual life (capped at ``1e9`` s), wide
        enough that the heavy-tailed optima of the paper's traces are
        interior.
    rel_tol:
        Relative tolerance of the bracket refinement.
    warm_start:
        A nearby known solution (typically ``T_opt`` of the previous
        schedule age); seeds a narrow bracket that skips the global
        scan.  Correctness is unaffected: if the narrow bracket's
        refinement would hit an edge, the solver falls back to the full
        cold path.
    method:
        ``"hybrid"`` (vectorised golden/Brent, the default) or
        ``"golden"`` (the paper's reference path); ``None`` uses the
        process default (see :func:`use_solver`).
    """
    if method is None:
        method = _default_method
    elif method not in _METHODS:
        raise ValueError(f"unknown solver method: {method!r}")
    cache = active_cache()
    fingerprint = distribution.fingerprint() if cache is not None else None
    if t_max is None:
        t_max = _resolve_t_max(distribution, fingerprint, age)

    key = None
    if cache is not None:
        key = SolverCache.key(
            fingerprint,
            costs.checkpoint,
            costs.recovery,
            costs.latency,
            age,
            t_min,
            t_max,
            rel_tol,
            method,
        )
        hit = cache.get(key)
        if hit is not None:
            return hit

    opt = _solve_interior(
        distribution,
        costs,
        age=age,
        t_min=t_min,
        t_max=t_max,
        rel_tol=rel_tol,
        method=method,
        warm_start=warm_start,
    )
    if cache is not None and key is not None:
        cache.put(key, opt)
    return opt


def _resolve_t_max(
    distribution: AvailabilityDistribution,
    fingerprint: tuple[object, ...] | None,
    age: float,
) -> float:
    """The default search upper bound for one (distribution, age).

    A pure function of its inputs, memoised per (fingerprint, age) so a
    cache-hit query does not pay a ``mean_residual_life`` evaluation
    (the serving hot path -- for heavy-tailed families that call costs
    more than the cache lookup it guards).  The memoised value is the
    same float the direct computation produces, so solves stay
    bit-identical; the memo is only consulted when a fingerprint is in
    hand (i.e. a solver cache is active).
    """
    memo_key = (fingerprint, age) if fingerprint is not None else None
    if memo_key is not None:
        cached = _TMAX_MEMO.get(memo_key)
        if cached is not None:
            return cached
    mrl = float(distribution.mean_residual_life(age))
    if not math.isfinite(mrl) or mrl <= 0.0:
        mrl = max(distribution.mean(), 1.0)
    t_max = min(max(1e4 * mrl, 1e6), 1e9)
    if memo_key is not None:
        if len(_TMAX_MEMO) >= _TMAX_MEMO_CAPACITY:
            _TMAX_MEMO.clear()
        _TMAX_MEMO[memo_key] = t_max
    return t_max


def _solve_interior(
    distribution: AvailabilityDistribution,
    costs: CheckpointCosts,
    *,
    age: float,
    t_min: float,
    t_max: float,
    rel_tol: float,
    method: str,
    warm_start: float | None = None,
) -> OptimalInterval:
    """The uncached solve: bracket + refine with resolved bounds."""
    model = MarkovIntervalModel(distribution, costs, age)
    guess = young_approximation(distribution, costs, age)
    guess = min(max(guess, t_min * 2.0), t_max / 2.0)

    def objective(T: float) -> float:
        ratio = model.overhead_ratio(T)
        return ratio if math.isfinite(ratio) else 1e300

    if method == "golden":
        result = minimize_positive_scalar(
            objective, guess=guess, lo=t_min, hi=t_max, rel_tol=rel_tol
        )
    else:

        def objective_batch(T: FloatArray) -> FloatArray:
            ratios = model.overhead_ratio_batch(T)
            out: FloatArray = np.where(np.isfinite(ratios), ratios, 1e300)
            return out

        result = minimize_positive_hybrid(
            objective,
            func_batch=objective_batch,
            guess=guess,
            warm_start=warm_start,
            lo=t_min,
            hi=t_max,
            rel_tol=rel_tol,
        )
    x = min(max(result.x, t_min), t_max)
    g = model.gamma(x)
    return OptimalInterval(
        T_opt=x,
        gamma=g,
        overhead_ratio=result.fx,
        expected_efficiency=x / g if math.isfinite(g) and g > 0 else 0.0,
        age=age,
        converged=result.converged,
    )


def optimize_intervals_batch(
    distribution: AvailabilityDistribution,
    costs: CheckpointCosts,
    ages: "Iterable[float]",
    *,
    t_min: float = 1e-3,
    t_max: float | None = None,
    rel_tol: float = 1e-6,
    method: str | None = None,
) -> list[OptimalInterval]:
    """Solve one (distribution, costs) pair at many elapsed uptimes.

    This is the dispatch primitive behind the ``repro serve``
    micro-batcher: a burst of concurrent queries that share a fitted
    model and cost set collapses to **one solve per distinct age** --
    duplicate ages (the common case for a pool manager polling many
    machines at the same bucketed uptime) are answered from the first
    solve of the burst, and each distinct age takes a single vectorised
    hybrid pass (one :meth:`~repro.core.markov.MarkovIntervalModel.\
overhead_ratio_batch` grid evaluation plus Brent refinement) rather
    than a golden-section evaluation chain.

    Every returned interval is **bitwise identical** to what the scalar
    :func:`optimize_interval` returns for the same arguments: distinct
    ages build the same cache key and run the same warm-start-free cold
    solve (:func:`_solve_interior`) -- only the shared distribution
    fingerprint and bound resolution are hoisted out of the loop -- and
    duplicates reuse the identical result object.  The equivalence
    suite (``tests/test_serve_equivalence.py``) gates this.

    Results are returned in input order.
    """
    if method is None:
        method = _default_method
    elif method not in _METHODS:
        raise ValueError(f"unknown solver method: {method!r}")
    cache = active_cache()
    # the whole batch shares one distribution: hoist the fingerprint (and
    # the per-age cache key construction) out of optimize_interval so a
    # burst of cache hits costs one dict probe per distinct age
    fingerprint = distribution.fingerprint() if cache is not None else None
    resolved: dict[float, OptimalInterval] = {}
    out: list[OptimalInterval] = []
    for age in ages:
        a = float(age)
        opt = resolved.get(a)
        if opt is None:
            bound = t_max if t_max is not None else _resolve_t_max(distribution, fingerprint, a)
            if cache is not None:
                key = SolverCache.key(
                    fingerprint,
                    costs.checkpoint,
                    costs.recovery,
                    costs.latency,
                    a,
                    t_min,
                    bound,
                    rel_tol,
                    method,
                )
                opt = cache.get(key)
                if opt is None:
                    opt = _solve_interior(
                        distribution,
                        costs,
                        age=a,
                        t_min=t_min,
                        t_max=bound,
                        rel_tol=rel_tol,
                        method=method,
                    )
                    cache.put(key, opt)
            else:
                opt = _solve_interior(
                    distribution,
                    costs,
                    age=a,
                    t_min=t_min,
                    t_max=bound,
                    rel_tol=rel_tol,
                    method=method,
                )
            resolved[a] = opt
        out.append(opt)
    return out
