"""Optimal work-interval selection (``T_opt``).

The optimal interval minimises the expected overhead ratio
``Gamma(T) / T`` of the Markov model.  The objective is coercive at both
ends -- as ``T -> 0`` every interval pays the fixed checkpoint cost for
vanishing work, and as ``T -> inf`` the retry term ``K22 * P22 / P21``
blows up because a failure before ``L + R + T`` becomes certain -- so an
interior minimum exists whenever the availability distribution has
unbounded support.  We locate it with bracketing plus Golden Section
Search, exactly the method the paper cites from Numerical Recipes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.markov import CheckpointCosts, MarkovIntervalModel
from repro.distributions.base import AvailabilityDistribution
from repro.numerics.optimize import minimize_positive_scalar

__all__ = ["OptimalInterval", "optimize_interval", "young_approximation"]


@dataclass(frozen=True)
class OptimalInterval:
    """The optimiser's output for one (distribution, costs, age) triple."""

    T_opt: float
    gamma: float
    overhead_ratio: float
    expected_efficiency: float
    age: float
    converged: bool


def young_approximation(distribution: AvailabilityDistribution, costs: CheckpointCosts, age: float = 0.0) -> float:
    """Young's first-order estimate ``T ~ sqrt(2 * C * MTTF)``.

    Used only to seed the bracketing search; the mean time to failure is
    taken as the mean residual life at the current uptime, which adapts
    the seed to heavy-tailed ageing.
    """
    mttf = float(distribution.mean_residual_life(age))
    if not math.isfinite(mttf) or mttf <= 0.0:
        mttf = max(distribution.mean(), 1.0)
    c = max(costs.checkpoint, 1e-6)
    return math.sqrt(2.0 * c * mttf)


def optimize_interval(
    distribution: AvailabilityDistribution,
    costs: CheckpointCosts,
    *,
    age: float = 0.0,
    t_min: float = 1e-3,
    t_max: float | None = None,
    rel_tol: float = 1e-6,
) -> OptimalInterval:
    """Compute ``T_opt`` for a distribution, cost set and elapsed uptime.

    Parameters
    ----------
    distribution:
        Fitted availability model.
    costs:
        ``C``/``R``/``L`` constants.
    age:
        ``T_elapsed``: time the resource has been available already
        (ignored by the memoryless exponential).
    t_min, t_max:
        Search bounds for the work interval.  ``t_max`` defaults to
        ``1e4`` times the mean residual life (capped at ``1e9`` s), wide
        enough that the heavy-tailed optima of the paper's traces are
        interior.
    rel_tol:
        Relative tolerance of the golden-section refinement.
    """
    model = MarkovIntervalModel(distribution, costs, age)
    guess = young_approximation(distribution, costs, age)
    if t_max is None:
        mrl = float(distribution.mean_residual_life(age))
        if not math.isfinite(mrl) or mrl <= 0.0:
            mrl = max(distribution.mean(), 1.0)
        t_max = min(max(1e4 * mrl, 1e6), 1e9)
    guess = min(max(guess, t_min * 2.0), t_max / 2.0)

    def objective(T: float) -> float:
        ratio = model.overhead_ratio(T)
        return ratio if math.isfinite(ratio) else 1e300

    result = minimize_positive_scalar(
        objective, guess=guess, lo=t_min, hi=t_max, rel_tol=rel_tol
    )
    g = model.gamma(result.x)
    return OptimalInterval(
        T_opt=result.x,
        gamma=g,
        overhead_ratio=result.fx,
        expected_efficiency=result.x / g if math.isfinite(g) and g > 0 else 0.0,
        age=age,
        converged=result.converged,
    )
