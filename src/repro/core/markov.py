"""Vaidya's three-state Markov model of a checkpoint interval (Section 3.5).

The execution of one checkpoint interval is modelled with three states:

* **state 0** -- start of the interval (the previous checkpoint, if any,
  is committed); the job computes for ``T`` seconds then checkpoints for
  ``C`` seconds;
* **state 1** -- the interval completed: ``T`` seconds of work are
  durable;
* **state 2** -- the resource failed (owner reclamation) somewhere in
  the interval; leaving state 2 requires surviving checkpoint latency
  ``L``, recovery ``R`` and a fresh work interval ``T``.

Transition probabilities and expected sojourn costs (the paper's
``P_ij`` / ``K_ij``)::

    P01 = 1 - F(C + T)            K01 = C + T
    P02 = F(C + T)                K02 = E[t | t < C + T]
    P21 = 1 - F(L + R + T)        K21 = L + R + T
    P22 = F(L + R + T)            K22 = E[t | t < L + R + T]

and the expected time to travel from state 0 to state 1 (eq. 11)::

    Gamma = P01 * K01 + P02 * (K02 + K22 * P22 / P21 + K21)

(The paper's eq. 11 prints ``K20``; by the first-step analysis of the
geometric number of retries out of state 2 the term is ``K21``, matching
Vaidya's original derivation.)

Two distributions appear: the 0-state transitions must use the
*future-lifetime* distribution conditioned on the resource's elapsed
uptime ``age`` (eq. 8), while the 2-state transitions use the
unconditional distribution, because a failure has just occurred and the
resource restarts fresh.  ``Gamma / T`` is the expected overhead ratio
minimised by the optimizer; its reciprocal ``T / Gamma`` is the expected
efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.distributions.base import ArrayLike, AvailabilityDistribution, FloatArray

__all__ = ["CheckpointCosts", "IntervalTransitions", "MarkovIntervalModel"]


@dataclass(frozen=True)
class CheckpointCosts:
    """Constant per-interval costs of the Markov model.

    Attributes
    ----------
    checkpoint:
        ``C`` -- seconds to write one checkpoint over the network.
    recovery:
        ``R`` -- seconds to restore the last checkpoint.  The paper's
        experiments set ``R = C`` (both are 500 MB transfers over the
        same link).
    latency:
        ``L`` -- checkpoint latency: time after a checkpoint completes
        before it is safely committed at the storage site.  With the
        paper's strictly sequential recovery/compute/checkpoint phases
        the checkpoint is committed the moment it finishes, so ``L``
        defaults to ``0``; Vaidya's general model allows ``L > 0``.
    """

    checkpoint: float
    recovery: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.checkpoint < 0 or self.recovery < 0 or self.latency < 0:
            raise ValueError(f"costs must be non-negative: {self}")

    @classmethod
    def symmetric(cls, cost: float, *, latency: float = 0.0) -> "CheckpointCosts":
        """The paper's ``C = R`` convention."""
        return cls(checkpoint=cost, recovery=cost, latency=latency)


@dataclass(frozen=True)
class IntervalTransitions:
    """The eight ``P_ij`` / ``K_ij`` quantities for one work interval ``T``."""

    T: float
    p01: float
    k01: float
    p02: float
    k02: float
    p21: float
    k21: float
    p22: float
    k22: float


@dataclass
class MarkovIntervalModel:
    """Evaluator of the three-state model for one (distribution, costs, age).

    Parameters
    ----------
    distribution:
        The fitted availability model (unconditional).
    costs:
        Constant ``C``/``R``/``L`` values.
    age:
        ``T_elapsed`` -- how long the resource has already been
        available; the 0-state transitions condition on it (for the
        exponential this is a no-op by memorylessness).
    """

    distribution: AvailabilityDistribution
    costs: CheckpointCosts
    age: float = 0.0
    _cond: AvailabilityDistribution = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.age < 0:
            raise ValueError(f"age must be non-negative, got {self.age}")
        self._cond = self.distribution.conditional(self.age)

    # ------------------------------------------------------------------
    def transitions(self, T: float) -> IntervalTransitions:
        """All transition probabilities and costs for work interval ``T``."""
        if T <= 0:
            raise ValueError(f"work interval must be positive, got {T}")
        C, R, L = self.costs.checkpoint, self.costs.recovery, self.costs.latency
        horizon0 = C + T
        horizon2 = L + R + T

        # state-0 transitions: future-lifetime distribution at `age`
        # (clamped: round-off in conditional ratios can stray a few ulps
        # outside [0, 1], which would make the probabilities negative)
        f0 = min(max(self._cond.cdf_one(horizon0), 0.0), 1.0)
        p01 = 1.0 - f0
        p02 = f0
        if f0 > 0.0:
            k02 = min(self._cond.partial_expectation_one(horizon0) / f0, horizon0)
        else:
            k02 = 0.0

        # state-2 transitions: unconditional distribution (fresh resource)
        f2 = min(max(self.distribution.cdf_one(horizon2), 0.0), 1.0)
        p21 = 1.0 - f2
        p22 = f2
        if f2 > 0.0:
            k22 = min(self.distribution.partial_expectation_one(horizon2) / f2, horizon2)
        else:
            k22 = 0.0

        return IntervalTransitions(
            T=T,
            p01=p01,
            k01=horizon0,
            p02=p02,
            k02=k02,
            p21=p21,
            k21=horizon2,
            p22=p22,
            k22=k22,
        )

    def gamma(self, T: float) -> float:
        """Expected time from state 0 to state 1 (eq. 11)."""
        tr = self.transitions(T)
        if tr.p02 <= 0.0:
            return tr.k01
        if tr.p21 <= 0.0:
            # a failure is certain to recur before any retry completes:
            # the job can never commit this interval
            return math.inf
        retry_cost = tr.k22 * tr.p22 / tr.p21 + tr.k21
        return tr.p01 * tr.k01 + tr.p02 * (tr.k02 + retry_cost)

    def overhead_ratio(self, T: float) -> float:
        """``Gamma(T) / T`` -- the quantity the paper minimises."""
        return self.gamma(T) / T

    # ------------------------------------------------------------------
    # batched evaluation (the vectorised-solver fast path)
    # ------------------------------------------------------------------
    def gamma_batch(self, T: ArrayLike) -> FloatArray:
        """Eq. 11 for a whole vector of candidate work intervals.

        One call evaluates the Markov objective at every element of ``T``
        through the distributions' array-form ``cdf`` /
        ``partial_expectation``, which is what makes grid bracketing in
        the hybrid solver cost roughly one scalar evaluation instead of
        one per abscissa.  Agrees with :meth:`gamma` pointwise (the
        scalar fast paths and the ndarray paths share formulas; they can
        differ by a few ulps of round-off, never more).
        """
        Tarr = np.atleast_1d(np.asarray(T, dtype=np.float64))
        if np.any(Tarr <= 0.0):
            raise ValueError("work intervals must be positive")
        C, R, L = self.costs.checkpoint, self.costs.recovery, self.costs.latency
        horizon0 = C + Tarr
        horizon2 = L + R + Tarr

        # state-0 transitions: future-lifetime distribution at `age`
        f0 = np.clip(np.asarray(self._cond.cdf(horizon0), dtype=np.float64), 0.0, 1.0)
        pe0 = np.asarray(self._cond.partial_expectation(horizon0), dtype=np.float64)
        safe0 = np.where(f0 > 0.0, f0, 1.0)
        k02 = np.where(f0 > 0.0, np.minimum(pe0 / safe0, horizon0), 0.0)

        # state-2 transitions: unconditional distribution (fresh resource)
        f2 = np.clip(np.asarray(self.distribution.cdf(horizon2), dtype=np.float64), 0.0, 1.0)
        pe2 = np.asarray(self.distribution.partial_expectation(horizon2), dtype=np.float64)
        safe2 = np.where(f2 > 0.0, f2, 1.0)
        k22 = np.where(f2 > 0.0, np.minimum(pe2 / safe2, horizon2), 0.0)

        p21 = 1.0 - f2
        with np.errstate(divide="ignore", invalid="ignore"):
            retry_cost = np.where(p21 > 0.0, k22 * f2 / np.where(p21 > 0.0, p21, 1.0) + horizon2, np.inf)
            inner = (1.0 - f0) * horizon0 + f0 * (k02 + retry_cost)
        out: FloatArray = np.where(f0 <= 0.0, horizon0, inner)
        return out

    def overhead_ratio_batch(self, T: ArrayLike) -> FloatArray:
        """``Gamma(T) / T`` elementwise for a vector of candidates."""
        Tarr = np.atleast_1d(np.asarray(T, dtype=np.float64))
        out: FloatArray = self.gamma_batch(Tarr) / Tarr
        return out

    def expected_efficiency(self, T: float) -> float:
        """``T / Gamma(T)`` -- expected fraction of time doing useful work."""
        g = self.gamma(T)
        return T / g if math.isfinite(g) and g > 0.0 else 0.0

    def at_age(self, age: float) -> "MarkovIntervalModel":
        """A model for the same distribution/costs at a different uptime."""
        return MarkovIntervalModel(self.distribution, self.costs, age)
