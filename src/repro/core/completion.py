"""Expected completion time of *finite* jobs under a checkpoint schedule.

The paper evaluates steady-state efficiency of a job that never ends; a
downstream user usually has ``W`` seconds of work and wants to know how
long it will take on a harvested resource.  Under the same Markov model,
a finite job simply consumes the aperiodic schedule until its work is
done, so its expected makespan is::

    E[makespan] = sum_i Gamma_i(T_opt(i))  over full intervals
                  + Gamma_last(W_remaining)   for the final partial one

where ``Gamma_i`` is eq. (11) evaluated at the uptime the resource will
have reached at interval ``i`` -- with one wrinkle: the final interval
does the remaining work and *still* pays a checkpoint (committing the
output), which keeps the estimate consistent with the simulator's
accounting.

:func:`expected_completion_time` computes the estimate;
:func:`simulate_completion_time` measures the distribution of actual
makespans by Monte Carlo over availability draws, which the tests use to
validate the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.markov import CheckpointCosts, MarkovIntervalModel
from repro.core.schedule import CheckpointSchedule
from repro.distributions.base import AvailabilityDistribution

__all__ = ["CompletionEstimate", "expected_completion_time", "simulate_completion_time"]

#: hard cap on schedule length; a job needing more intervals than this
#: has an effectively unbounded makespan under the model
_MAX_INTERVALS = 100_000


@dataclass(frozen=True)
class CompletionEstimate:
    """Model-expected makespan of a finite job."""

    total_work: float
    expected_makespan: float
    n_intervals: int
    expected_efficiency: float

    @property
    def expected_overhead(self) -> float:
        """Expected non-work time (recovery, checkpoints, lost work)."""
        return self.expected_makespan - self.total_work


def expected_completion_time(
    distribution: AvailabilityDistribution,
    costs: CheckpointCosts,
    total_work: float,
    *,
    t_elapsed: float = 0.0,
    include_initial_recovery: bool = True,
    converge_rel_tol: float | None = 1e-3,
) -> CompletionEstimate:
    """Expected makespan of ``total_work`` seconds of computation.

    Parameters
    ----------
    distribution, costs:
        The fitted availability model and the ``C``/``R``/``L`` costs.
    total_work:
        Seconds of useful computation the job must commit.
    t_elapsed:
        Resource uptime at job start (conditions the first intervals).
    include_initial_recovery:
        Whether the job begins by restoring state (the live protocol's
        initial transfer); adds ``R`` to the estimate.
    """
    if total_work <= 0:
        raise ValueError(f"total work must be positive, got {total_work}")
    schedule = CheckpointSchedule(
        distribution,
        costs,
        t_elapsed=t_elapsed,
        converge_rel_tol=converge_rel_tol,
    )
    remaining = float(total_work)
    makespan = costs.recovery if include_initial_recovery else 0.0
    i = 0
    while remaining > 0.0:
        if i >= _MAX_INTERVALS:
            raise RuntimeError(
                f"completion needs more than {_MAX_INTERVALS} intervals; "
                "the job is effectively unschedulable under this model"
            )
        opt = schedule.interval(i)
        T = min(opt.T_opt, remaining)
        if T >= opt.T_opt:
            makespan += opt.gamma
        else:
            # final partial interval: re-evaluate Gamma at the remaining
            # work (still paying its commit checkpoint)
            model = MarkovIntervalModel(
                distribution, costs, age=schedule.age_of_interval(i)
            )
            makespan += model.gamma(T)
        remaining -= T
        i += 1
    return CompletionEstimate(
        total_work=float(total_work),
        expected_makespan=makespan,
        n_intervals=i,
        expected_efficiency=float(total_work) / makespan if makespan > 0 else 0.0,
    )


def simulate_completion_time(
    distribution_model: AvailabilityDistribution,
    ground_truth: AvailabilityDistribution,
    costs: CheckpointCosts,
    total_work: float,
    *,
    rng: np.random.Generator,
    n_runs: int = 100,
    include_initial_recovery: bool = True,
    converge_rel_tol: float | None = 1e-3,
) -> np.ndarray:
    """Monte Carlo makespans of a finite job over random availability.

    Each run draws availability durations from ``ground_truth`` while
    the schedule is steered by ``distribution_model`` (they may differ:
    that is exactly the paper's model-misspecification question).
    Returns the array of ``n_runs`` makespans.
    """
    if total_work <= 0:
        raise ValueError(f"total work must be positive, got {total_work}")
    schedule = CheckpointSchedule(
        distribution_model, costs, converge_rel_tol=converge_rel_tol
    )
    C = costs.checkpoint
    R = costs.recovery
    makespans = np.empty(n_runs)
    for run in range(n_runs):
        elapsed = 0.0
        remaining = float(total_work)
        first = True
        while remaining > 0.0:
            avail = float(np.asarray(ground_truth.sample(1, rng))[0])
            t = 0.0
            need_recovery = (not first) or include_initial_recovery
            if need_recovery:
                if R > avail:
                    elapsed += avail
                    continue
                t += R
            first = False
            i = 0
            while remaining > 0.0:
                T = min(schedule.work_interval(i), remaining)
                if t + T + C <= avail:
                    remaining -= T
                    t += T + C
                    i += 1
                else:
                    t = avail  # eviction: uncommitted work lost
                    break
            elapsed += t
        makespans[run] = elapsed
    return makespans
