"""A process-global, bounded LRU cache for schedule solves.

The pool sweep re-solves identical ``(distribution, costs, age)``
instances constantly: every replay of a machine rebuilds its
:class:`~repro.core.schedule.CheckpointSchedule` from scratch, repeated
sweeps and sensitivity studies revisit the same fitted models, and the
ablation benches replay the same traces several times over.  Since
``T_opt`` is a pure function of the solve inputs, those repeats are pure
waste -- this module memoises them.

Keys are ``(distribution fingerprint, C, R, L, age bucket, t_min,
t_max, rel_tol, method)``:

* the **fingerprint** (see
  :meth:`~repro.distributions.base.AvailabilityDistribution.fingerprint`)
  identifies a distribution by family and parameters, so two
  ``Weibull(0.43, 3409.0)`` instances fitted in different processes hit
  the same entry;
* the **age bucket** quantises the elapsed uptime to 1e-9 seconds --
  exact for the repeated identical age chains the schedule produces,
  while collapsing sub-nanosecond float dust.  The quantum is far below
  the 1e-9 *relative* ``T_opt`` equivalence budget of the golden-master
  tests (``d T_opt / d age`` is O(1) for every family in the suite);
* the solver ``method`` keeps legacy golden-section results from being
  served to hybrid queries (they agree only to the solver tolerance,
  not to the cache's exactness contract).

The cache is **per process** (like the metrics registry) and explicitly
mergeable across processes: each sweep worker ships
:meth:`SolverCache.as_dict` back with its results and the parent folds
it in with :meth:`SolverCache.merge_dict`, so a second sweep in the same
parent process starts warm even for work done in workers.  Hits, misses
and evictions are reported through the active metrics registry
(``opt.cache.hits`` / ``opt.cache.misses`` / ``opt.cache.evictions``)
and therefore merge across workers exactly like every other counter.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import active as _metrics

if TYPE_CHECKING:
    from repro.core.optimizer import OptimalInterval

__all__ = [
    "DEFAULT_CAPACITY",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "SolverCache",
    "SolverCacheKey",
    "active_cache",
    "configure_cache",
    "use_solver_cache",
]

#: cache keys are nested tuples of primitives (hashable and
#: pickle/JSON-representable)
SolverCacheKey = tuple[Any, ...]

#: default entry bound: ~100 bytes/entry, so the default cache tops out
#: around a few MB -- enough for hundreds of (machine, model, cost)
#: schedules without ever mattering for memory
DEFAULT_CAPACITY = 8192

#: age-bucket quantum (seconds); see the module docstring
AGE_QUANTUM_DIGITS = 9

#: schema identifier of the snapshot dict produced by
#: :meth:`SolverCache.as_dict`.  The trailing segment is the format
#: version, also carried explicitly in the snapshot's ``version`` field;
#: :meth:`SolverCache.merge_dict` rejects snapshots whose schema or
#: version does not match, so a daemon warm-loading a disk snapshot from
#: a future (or foreign) writer fails loudly instead of silently
#: mis-parsing entries.
SNAPSHOT_SCHEMA = "repro.opt.solver_cache/1"

#: current snapshot format version (bump together with the schema suffix
#: on any incompatible change to the entry layout)
SNAPSHOT_VERSION = 1


def _freeze(obj: Any) -> Any:
    """Recursively convert lists to tuples (JSON round-trip support)."""
    if isinstance(obj, list | tuple):
        return tuple(_freeze(v) for v in obj)
    return obj


class SolverCache:
    """Bounded LRU mapping of solve keys to :class:`OptimalInterval`."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[SolverCacheKey, OptimalInterval] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        fingerprint: tuple[Any, ...],
        checkpoint: float,
        recovery: float,
        latency: float,
        age: float,
        t_min: float,
        t_max: float,
        rel_tol: float,
        method: str,
    ) -> SolverCacheKey:
        """The canonical cache key for one solve instance."""
        return (
            fingerprint,
            float(checkpoint),
            float(recovery),
            float(latency),
            round(float(age), AGE_QUANTUM_DIGITS),
            float(t_min),
            float(t_max),
            float(rel_tol),
            method,
        )

    # ------------------------------------------------------------------
    def get(self, key: SolverCacheKey) -> "OptimalInterval | None":
        entry = self._entries.get(key)
        reg = _metrics()
        if entry is None:
            self.misses += 1
            if reg is not None:
                reg.inc("opt.cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if reg is not None:
            reg.inc("opt.cache.hits")
        return entry

    def put(self, key: SolverCacheKey, value: "OptimalInterval") -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            reg = _metrics()
            if reg is not None:
                reg.inc("opt.cache.evictions")

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SolverCacheKey) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[SolverCacheKey]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # snapshots: the metrics-registry merge protocol, for solve results
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """A snapshot of the cache contents plus its traffic stats.

        Entries appear in LRU order (least recent first) so a merge into
        an empty cache preserves the eviction order.  Keys are nested
        tuples of primitives; values are the plain-dict form of
        :class:`OptimalInterval`.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "version": SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [[list(k), asdict(v)] for k, v in self._entries.items()],
        }

    def merge_dict(self, data: dict[str, Any], *, stats: bool = True) -> int:
        """Fold a snapshot in; existing entries win.  Returns the number
        of entries actually inserted.

        ``stats=False`` merges the entries but not the hit/miss/eviction
        counters -- for repeated snapshots of a long-lived cache (the
        sweep workers ship their cumulative cache once per task), where
        adding the counters each time would multi-count them.

        Raises :class:`ValueError` when ``data`` is not a solver-cache
        snapshot, carries an unknown schema, or was written by a newer
        format version -- a daemon warm-loading a stale or foreign file
        must fail loudly rather than populate the cache with garbage.
        (Version-1 snapshots written before the explicit ``version``
        field are still accepted: the schema string pins the format.)
        """
        from repro.core.optimizer import OptimalInterval

        schema = data.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"not a solver-cache snapshot: expected schema {SNAPSHOT_SCHEMA!r}, "
                f"got {schema!r}"
            )
        version = int(data.get("version", SNAPSHOT_VERSION))
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported solver-cache snapshot version {version} "
                f"(this build reads version {SNAPSHOT_VERSION}); regenerate the "
                "snapshot with SolverCache.as_dict()"
            )
        inserted = 0
        for index, item in enumerate(data.get("entries", [])):
            try:
                raw_key, raw_value = item
                key = _freeze(raw_key)
                if key in self._entries:
                    continue
                entry = OptimalInterval(**raw_value)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"malformed solver-cache snapshot entry {index}: {exc}"
                ) from exc
            self.put(key, entry)
            inserted += 1
        if stats:
            self.hits += int(data.get("hits", 0))
            self.misses += int(data.get("misses", 0))
            self.evictions += int(data.get("evictions", 0))
        return inserted

    def merge(self, other: "SolverCache") -> int:
        return self.merge_dict(other.as_dict())


# ----------------------------------------------------------------------
# the process-global default cache (enabled out of the box: memoised
# results are bit-identical to recomputation, so there is no behaviour
# change -- only fewer solves)
# ----------------------------------------------------------------------
_active: SolverCache | None = SolverCache()


def active_cache() -> SolverCache | None:
    """The process-global solver cache, or ``None`` when disabled."""
    return _active


def configure_cache(cache: SolverCache | None) -> SolverCache | None:
    """Install ``cache`` as the process default (``None`` disables)."""
    global _active
    _active = cache
    return _active


@contextmanager
def use_solver_cache(cache: SolverCache | None) -> Iterator[SolverCache | None]:
    """Temporarily swap the process-global cache (tests, benches)."""
    global _active
    previous = _active
    _active = cache
    try:
        yield cache
    finally:
        _active = previous
