"""Aperiodic checkpoint schedules -- the sequence ``T_opt(i)``.

For a memoryless (exponential) model a single periodic interval is
optimal.  For the Weibull and hyperexponential models the future-lifetime
distribution changes as the resource ages, so the paper computes a
*schedule*: ``T_opt(0)`` at job initiation (using ``T_elapsed``, the time
the resource has already been available), then each successive
``T_opt(i)`` at the uptime the resource will have reached at the start of
work interval ``i``.  The schedule remains valid until the next failure,
after which a fresh schedule is computed.

:class:`CheckpointSchedule` materialises the sequence lazily and caches
it, since the trace simulator asks for the same prefixes over and over.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.core.markov import CheckpointCosts
from repro.core.optimizer import OptimalInterval, optimize_interval
from repro.distributions.base import AvailabilityDistribution
from repro.distributions.exponential import Exponential
from repro.obs.metrics import active as _metrics
from repro.obs.tracing import active as _trace_active

__all__ = ["CheckpointSchedule"]


class CheckpointSchedule:
    """Lazy, cached sequence of optimal work intervals for one uptime run.

    Parameters
    ----------
    distribution:
        Fitted availability model for the resource.
    costs:
        ``C``/``R``/``L`` constants in effect for this run.
    t_elapsed:
        Resource uptime at job initiation (``T_elapsed`` in the paper).
    include_recovery_age:
        If ``True``, the initial recovery phase of duration ``R`` ages
        the resource before the first work interval begins (the resource
        is up, just not doing useful work).  The paper computes
        ``T_opt(0)`` at initiation time, i.e. without the recovery
        offset, so the default is ``False``; the ablation benchmarks
        exercise both settings.
    converge_rel_tol:
        Optional early-out for long schedules: once two consecutive
        ``T_opt`` values differ by less than this relative tolerance the
        schedule is treated as converged and the last interval is reused
        for all later indices.  Non-memoryless optima settle quickly as
        the conditional distribution stabilises (the hyperexponential
        converges to its slowest phase; the Weibull drifts ever more
        slowly), so the trace simulator enables this with ``1e-3`` to
        bound the number of golden-section solves per schedule.
        ``None`` (the default) disables the shortcut.
    """

    def __init__(
        self,
        distribution: AvailabilityDistribution,
        costs: CheckpointCosts,
        *,
        t_elapsed: float = 0.0,
        include_recovery_age: bool = False,
        t_min: float = 1e-3,
        t_max: float | None = None,
        converge_rel_tol: float | None = None,
    ) -> None:
        if t_elapsed < 0:
            raise ValueError(f"t_elapsed must be non-negative, got {t_elapsed}")
        self.distribution = distribution
        self.costs = costs
        self.t_elapsed = float(t_elapsed)
        self.include_recovery_age = include_recovery_age
        self._t_min = t_min
        self._t_max = t_max
        self._intervals: list[OptimalInterval] = []
        self._ages: list[float] = []
        self._memoryless = isinstance(distribution, Exponential)
        self._converge_rel_tol = converge_rel_tol
        self._converged_at: int | None = None

    # ------------------------------------------------------------------
    @property
    def is_periodic(self) -> bool:
        """True when every interval is identical (memoryless model)."""
        return self._memoryless

    def age_of_interval(self, i: int) -> float:
        """Resource uptime at the start of work interval ``i``."""
        self._extend_to(i)
        return self._ages[i]

    def interval(self, i: int) -> OptimalInterval:
        """The full optimiser output for work interval ``i``."""
        self._extend_to(i)
        return self._intervals[i]

    def work_interval(self, i: int) -> float:
        """``T_opt(i)`` in seconds."""
        return self.interval(i).T_opt

    def intervals(self, n: int) -> list[float]:
        """The first ``n`` work intervals ``[T_opt(0), ..., T_opt(n-1)]``.

        ``n = 0`` is a valid (empty) prefix; negative ``n`` is an error.
        """
        if n < 0:
            raise ValueError(f"interval count must be >= 0, got {n}")
        if n == 0:
            return []
        self._extend_to(n - 1)
        return [it.T_opt for it in self._intervals[:n]]

    def interval_array(self, n: int) -> "np.ndarray[Any, np.dtype[np.float64]]":
        """The first ``n`` work intervals as a float64 vector.

        Bulk export for the batch replay kernel
        (:mod:`repro.simulation.batch_replay`), which turns the prefix
        into a cumulative cycle table ``t_k = sum_{j<k}(T_j + C + L)``
        and resolves whole availability traces against it with one
        ``searchsorted`` pass instead of per-event calls to
        :meth:`work_interval`.  Lazy like :meth:`intervals`: only the
        indices not yet materialised are solved.
        """
        return np.asarray(self.intervals(n), dtype=np.float64)

    def __iter__(self) -> Iterator[float]:
        i = 0
        while True:
            yield self.work_interval(i)
            i += 1

    def expected_efficiency(self, i: int = 0) -> float:
        """Model-predicted efficiency ``T / Gamma`` of interval ``i``."""
        return self.interval(i).expected_efficiency

    def restarted(self, t_elapsed: float = 0.0) -> "CheckpointSchedule":
        """A fresh schedule after a failure (new ``T_elapsed``)."""
        return CheckpointSchedule(
            self.distribution,
            self.costs,
            t_elapsed=t_elapsed,
            include_recovery_age=self.include_recovery_age,
            t_min=self._t_min,
            t_max=self._t_max,
            converge_rel_tol=self._converge_rel_tol,
        )

    def with_costs(self, costs: CheckpointCosts, *, t_elapsed: float | None = None) -> "CheckpointSchedule":
        """A schedule with re-measured costs (the live system re-measures
        ``C``/``R`` from each observed transfer)."""
        return CheckpointSchedule(
            self.distribution,
            costs,
            t_elapsed=self.t_elapsed if t_elapsed is None else t_elapsed,
            include_recovery_age=self.include_recovery_age,
            t_min=self._t_min,
            t_max=self._t_max,
            converge_rel_tol=self._converge_rel_tol,
        )

    # ------------------------------------------------------------------
    def _extend_to(self, i: int) -> None:
        if i < 0:
            raise IndexError(f"interval index must be >= 0, got {i}")
        while len(self._intervals) <= i:
            idx = len(self._intervals)
            if idx == 0:
                age = self.t_elapsed
                if self.include_recovery_age:
                    age += self.costs.recovery
            else:
                # the machine is up throughout the strictly sequential
                # work / transfer / commit-latency phases, so interval
                # i+1 starts T + C + L after interval i did
                prev_age = self._ages[-1]
                prev_t = self._intervals[-1].T_opt
                age = prev_age + prev_t + self.costs.checkpoint + self.costs.latency
            reg = _metrics()
            trace = _trace_active()
            if self._memoryless and self._intervals:
                # memorylessness: T_opt is age-invariant; reuse interval 0
                first = self._intervals[0]
                self._intervals.append(first)
                self._ages.append(age)
                if reg is not None:
                    reg.inc("schedule.reuses.memoryless")
                if trace is not None:
                    trace.point("opt", "cache_hit", ts=age, args={"kind": "memoryless"})
                continue
            if self._converged_at is not None:
                self._intervals.append(self._intervals[-1])
                self._ages.append(age)
                if reg is not None:
                    reg.inc("schedule.reuses.converged")
                if trace is not None:
                    trace.point("opt", "cache_hit", ts=age, args={"kind": "converged"})
                continue
            if not math.isfinite(age):  # pragma: no cover - defensive
                raise OverflowError("schedule age overflowed")
            if reg is not None:
                reg.inc("schedule.solves")
            # cross-age warm start: T_opt varies slowly along the age
            # chain (that is what converge_rel_tol exploits), so seed
            # the bracket for age k+1 from T_opt(k).  The solver falls
            # back to the full cold bracket if the seed misleads, so
            # this is purely a performance hint.
            warm = self._intervals[-1].T_opt if self._intervals else None
            if warm is not None and reg is not None:
                reg.observe("schedule.warm_depth", idx)
            wall0 = time.perf_counter()
            opt = optimize_interval(
                self.distribution,
                self.costs,
                age=age,
                t_min=self._t_min,
                t_max=self._t_max,
                warm_start=warm,
            )
            if trace is not None:
                # the solve is instantaneous in sim time (a zero-width
                # span at the resource age it was computed for); its real
                # cost is the wall_s argument
                trace.span(
                    "opt", "solve", age, 0.0,
                    args={
                        "index": idx,
                        "T_opt": opt.T_opt,
                        "wall_s": time.perf_counter() - wall0,
                    },
                )
            self._intervals.append(opt)
            self._ages.append(age)
            if (
                self._converge_rel_tol is not None
                and idx >= 1
                and abs(opt.T_opt - self._intervals[idx - 1].T_opt)
                <= self._converge_rel_tol * self._intervals[idx - 1].T_opt
            ):
                self._converged_at = idx
