"""High-level planner: the public "fit a trace, get a schedule" API.

This is the paper's "small, portable routine" packaged as a library
object.  Typical use::

    from repro.core import CheckpointPlanner

    planner = CheckpointPlanner.fit(training_durations, model="weibull")
    schedule = planner.schedule(checkpoint_cost=110.0, recovery_cost=110.0,
                                t_elapsed=3600.0)
    T0 = schedule.work_interval(0)        # first work interval
    eff = schedule.expected_efficiency()  # model-predicted efficiency

The planner owns the fitted distribution and hands out
:class:`~repro.core.schedule.CheckpointSchedule` objects parameterised by
the (possibly re-measured) transfer costs and the resource's elapsed
uptime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.markov import CheckpointCosts
from repro.core.optimizer import OptimalInterval, optimize_interval
from repro.core.schedule import CheckpointSchedule
from repro.distributions.base import ArrayLike, AvailabilityDistribution
from repro.distributions.fitting import fit_model

__all__ = ["CheckpointPlanner"]


@dataclass(frozen=True)
class CheckpointPlanner:
    """Binds a fitted availability model to schedule construction."""

    distribution: AvailabilityDistribution
    model_name: str

    @classmethod
    def fit(
        cls,
        training_durations: ArrayLike,
        *,
        model: str = "weibull",
        censored: ArrayLike | None = None,
        rng: np.random.Generator | None = None,
    ) -> "CheckpointPlanner":
        """Fit the named model to a training set of availability durations.

        ``model`` is one of ``"exponential"``, ``"weibull"``,
        ``"hyperexp2"``, ``"hyperexp3"`` (or ``"hyperexpK"`` generally).
        """
        dist = fit_model(model, training_durations, censored, rng=rng)
        return cls(distribution=dist, model_name=model)

    @classmethod
    def from_distribution(cls, distribution: AvailabilityDistribution) -> "CheckpointPlanner":
        """Wrap an already-constructed distribution."""
        return cls(distribution=distribution, model_name=distribution.name)

    # ------------------------------------------------------------------
    def schedule(
        self,
        *,
        checkpoint_cost: float,
        recovery_cost: float | None = None,
        latency: float = 0.0,
        t_elapsed: float = 0.0,
        include_recovery_age: bool = False,
    ) -> CheckpointSchedule:
        """A checkpoint schedule for one uptime run on this resource.

        ``recovery_cost`` defaults to ``checkpoint_cost`` (the paper's
        ``C = R`` convention).
        """
        costs = CheckpointCosts(
            checkpoint=checkpoint_cost,
            recovery=checkpoint_cost if recovery_cost is None else recovery_cost,
            latency=latency,
        )
        return CheckpointSchedule(
            self.distribution,
            costs,
            t_elapsed=t_elapsed,
            include_recovery_age=include_recovery_age,
        )

    def optimal_interval(
        self,
        *,
        checkpoint_cost: float,
        recovery_cost: float | None = None,
        latency: float = 0.0,
        t_elapsed: float = 0.0,
    ) -> OptimalInterval:
        """Just ``T_opt`` (and its expected efficiency) for one decision.

        This mirrors the paper's instrumented test process, which
        recomputes a single interval from freshly measured costs after
        every checkpoint.
        """
        costs = CheckpointCosts(
            checkpoint=checkpoint_cost,
            recovery=checkpoint_cost if recovery_cost is None else recovery_cost,
            latency=latency,
        )
        return optimize_interval(self.distribution, costs, age=t_elapsed)
