"""Gang-scheduled parallel jobs with coordinated checkpointing.

The paper's conclusion motivates parallel applications on harvested
clusters.  This example runs one barrier-synchronous job across a gang
of desktop machines: computation halts when *any* rank's machine is
reclaimed, checkpoints are coordinated (all ranks push 500 MB at once
over the shared link) and the work interval comes from the Markov
optimizer driven by the gang's min-of-machines availability.

It also demonstrates the extension's finding: the per-machine heavy
tails that drive the paper's single-job bandwidth asymmetry get
averaged away by the minimum over ranks, so model choice matters much
less for coordinated gangs than for independent jobs.

Run:  python examples/gang_job.py [width]
"""

import sys

from repro.condor import GangExperimentConfig, run_gang_experiment

MODELS = ("exponential", "weibull", "hyperexp2")


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    horizon_days = 0.5
    print(
        f"one gang of {width} ranks per model, identical fleet "
        f"(same seed), {horizon_days:g} simulated days\n"
    )
    print(f"{'model':12s} {'eff':>7s} {'MB/h':>8s} {'gang failures':>14s} "
          f"{'coordinated ckpts':>18s}")
    for model in MODELS:
        res = run_gang_experiment(
            GangExperimentConfig(
                width=width,
                model=model,
                horizon=horizon_days * 86400.0,
                n_machines=max(3 * width, 12),
                seed=9,
            )
        )
        print(
            f"{model:12s} {res.efficiency:7.3f} {res.mb_per_hour:8.0f} "
            f"{res.n_gang_failures:14d} {res.n_coordinated_checkpoints:18d}"
        )
    print(
        "\nidentical failure columns = the comparison is paired; the nearly\n"
        "identical MB/h columns show the min-of-machines availability washing\n"
        "out the per-machine heavy tails that separate the models for solo jobs."
    )


if __name__ == "__main__":
    main()
