"""Finite-job planning: how long will my 12 CPU-hours actually take?

The paper's evaluation concerns steady-state efficiency of endless jobs;
a user submitting a *finite* job wants its expected makespan.  This
example fits the four candidate models to one machine's history and
compares their expected completion times for a range of job sizes --
then validates the analytic estimates against Monte Carlo replays of
the ground truth.

Run:  python examples/finite_job.py
"""

import numpy as np

from repro.core import CheckpointCosts, expected_completion_time, simulate_completion_time
from repro.distributions import fit_all_models
from repro.traces import paper_reference_distribution

CHECKPOINT_COST = 110.0
JOB_SIZES_HOURS = (1.0, 4.0, 12.0)


def main() -> None:
    rng = np.random.default_rng(17)
    truth = paper_reference_distribution()
    history = truth.sample(25, rng)
    suite = fit_all_models(history)
    costs = CheckpointCosts.symmetric(CHECKPOINT_COST)

    header = f"{'model':14s}" + "".join(f"{h:>14.0f}h-job" for h in JOB_SIZES_HOURS)
    print("expected makespan (hours) by model and job size")
    print(header)
    for name, dist in suite.items():
        cells = []
        for hours in JOB_SIZES_HOURS:
            est = expected_completion_time(dist, costs, hours * 3600.0)
            cells.append(f"{est.expected_makespan / 3600.0:14.1f}")
        print(f"{name:14s}" + "".join(cells) + "h")

    print("\nvalidating the Weibull estimate against 200 Monte Carlo replays")
    work = 4.0 * 3600.0
    est = expected_completion_time(suite.weibull, costs, work)
    sims = simulate_completion_time(
        suite.weibull, truth, costs, work, rng=rng, n_runs=200
    )
    print(
        f"  analytic: {est.expected_makespan / 3600.0:.2f} h   "
        f"Monte Carlo: {sims.mean() / 3600.0:.2f} h "
        f"(p10={np.quantile(sims, 0.1) / 3600.0:.2f}, "
        f"p90={np.quantile(sims, 0.9) / 3600.0:.2f})"
    )
    print(
        "\nThe heavy-tailed models expect shorter makespans for long jobs\n"
        "because surviving machines keep earning longer work intervals."
    )


if __name__ == "__main__":
    main()
