"""Checkpoint storage policies: same schedule problem, fewer bytes.

The paper moves the full 500 MB image at every checkpoint; a storage
policy moves deltas between periodic fulls, optionally compressed, and
pays recovery as a restore *chain* (base full + deltas).  This example
replays one synthetic machine at the Table 4 campus point (110 s per
500 MB) under a ladder of policies and prints what each does to the
network load, the realised efficiency and the restore chains.

Run:  python examples/storage_model.py [n_observations]
"""

import sys

import numpy as np

from repro import SimulationConfig, simulate_trace
from repro.distributions import fit_weibull
from repro.storage import StoragePolicy
from repro.traces import paper_reference_distribution, synthetic_trace

CHECKPOINT_COST = 110.0  # seconds per full 500 MB image (campus link)

POLICIES = [
    ("full (paper)", None),
    ("incremental d=0.10, full every 10", StoragePolicy(delta_fraction=0.10, full_every_k=10)),
    ("incremental d=0.30, full every 10", StoragePolicy(delta_fraction=0.30, full_every_k=10)),
    ("incremental d=0.10, keep-last-5", StoragePolicy(delta_fraction=0.10, full_every_k=50, keep_last_k=5)),
    ("dirty-page tau=30min, full every 10", StoragePolicy(delta_model="dirty-page", dirty_tau=1800.0, full_every_k=10)),
    ("incremental d=0.10 + 2x compression", StoragePolicy(delta_fraction=0.10, full_every_k=10, compression_ratio=2.0, compression_mb_per_s=200.0)),
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 125
    rng = np.random.default_rng(7)
    machine = synthetic_trace(
        paper_reference_distribution(), n=n, rng=rng, machine_id="demo"
    )
    train, _ = machine.split(25)
    dist = fit_weibull(train)

    print(f"machine {machine.machine_id}: {len(machine)} observations, "
          f"Weibull fit on the first 25")
    print(f"C = {CHECKPOINT_COST:.0f} s per 500 MB -> link {500.0 / CHECKPOINT_COST:.1f} MB/s\n")
    print(f"{'policy':38s} {'eff':>6s} {'MB moved':>10s} {'vs full':>8s} "
          f"{'ckpts':>6s} {'chain':>6s}")

    base_mb = None
    for name, policy in POLICIES:
        result = simulate_trace(
            dist,
            machine.durations,
            SimulationConfig(checkpoint_cost=CHECKPOINT_COST, storage=policy),
            machine_id=machine.machine_id,
            model_name="weibull",
        )
        if base_mb is None:
            base_mb = result.mb_total
        saved = (result.mb_total - base_mb) / base_mb * 100.0 if base_mb else 0.0
        chain = result.max_restore_chain_len if policy is not None else 1
        print(
            f"{name:38s} {result.efficiency:6.3f} {result.mb_total:10.0f} "
            f"{saved:+7.1f}% {result.n_checkpoints_completed:6d} {chain:6d}"
        )

    print(
        "\nDeltas shrink the effective checkpoint cost, so the optimizer\n"
        "checkpoints more often yet moves fewer megabytes; keep-last-k\n"
        "bounds the restore chain the next recovery must fetch."
    )


if __name__ == "__main__":
    main()
