"""Network-aware cost estimation: the NWS-forecaster ablation.

The paper's system "combine[s] [the availability] model with predictions
of network performance to the storage site".  The live test process
re-measures the checkpoint cost from every transfer; on a volatile
wide-area link a single measurement is noisy, so this example compares
steering the optimizer with

* the raw last measurement (the paper's protocol), vs
* the NWS-style forecaster-tournament ensemble,

over the same fleet, seed and 1-day horizon.

Run:  python examples/network_aware.py
"""

from repro.condor import LiveExperimentConfig, run_live_experiment
from repro.network import default_ensemble
from repro.network.bandwidth import wan_link


def run(use_forecaster: bool):
    config = LiveExperimentConfig(
        horizon=86400.0,
        n_machines=24,
        n_concurrent_jobs=10,
        link="wan",
        seed=99,
        use_forecaster=use_forecaster,
    )
    return run_live_experiment(config)


def main() -> None:
    print("wide-area link, identical fleet and seed; only the cost estimator differs\n")
    for label, use in (("last measurement (paper)", False), ("NWS ensemble", True)):
        result = run(use)
        print(f"--- {label} ---")
        print(f"{'model':12s} {'eff':>7s} {'MB/h':>8s} {'n':>4s}")
        for model, agg in result.aggregates.items():
            print(
                f"{agg.model_name:12s} {agg.avg_efficiency:7.3f} "
                f"{agg.megabytes_per_hour:8.0f} {agg.sample_size:4d}"
            )
        print(f"mean measured transfer cost: {result.mean_transfer_cost:.0f} s\n")

    # show what the tournament converges to on this link
    ens = default_ensemble()
    link = wan_link()
    for k in range(40):
        t = k * 600.0
        ens.update(500.0 / link.rate(t))
    print(f"forecaster tournament winner on this link: {ens.best_member().name}")


if __name__ == "__main__":
    main()
