"""A miniature of the paper's simulation study (Figures 3/4, Tables 1/3).

Generates a synthetic Condor pool, fits the four candidate availability
models to each machine's training prefix, replays every trace under
every (model, checkpoint-cost) pair, and prints the efficiency and
network-load tables with confidence intervals and the paper's
significance markers, plus ASCII renderings of both figures.

Run:  python examples/pool_study.py [n_machines]
"""

import sys

from repro.experiments import run_simulation_study
from repro.traces import SyntheticPoolConfig

DEFAULT_MACHINES = 24


def main() -> None:
    n_machines = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_MACHINES
    config = SyntheticPoolConfig(n_machines=n_machines, n_observations=100)
    print(f"running the sweep over {n_machines} machines "
          f"(10 checkpoint costs x 4 models)...\n")
    study = run_simulation_study(
        pool_config=config,
        checkpoint_costs=(50.0, 100.0, 250.0, 500.0, 1000.0, 1500.0),
    )

    print(study.efficiency_table().render())
    print()
    print(study.efficiency_figure().render())
    print()
    print(study.bandwidth_table().render())
    print()
    print(study.bandwidth_figure().render())

    eff = study.mean_series("efficiency")
    mb = study.mean_series("mb_total")
    spread_eff = max(v.mean() for v in eff.values()) - min(v.mean() for v in eff.values())
    exp_vs_h2 = (mb["exponential"] / mb["hyperexp2"] - 1.0) * 100.0
    print(
        f"\nefficiency spread across models: {spread_eff:.3f} (small), while the\n"
        f"exponential moves {exp_vs_h2.mean():.0f}% more megabytes than the "
        f"2-phase hyperexponential\non average — the paper's headline asymmetry."
    )


if __name__ == "__main__":
    main()
