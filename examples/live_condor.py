"""The live-Condor emulation (Tables 4/5) plus the Section 5.3 validation.

Stands up the full discrete-event world -- desktop fleet with owner
reclamations, FIFO Condor scheduler, checkpoint manager behind a shared
(campus or wide-area) link -- and streams instrumented test processes
through it for a simulated day, rotating the four availability models
across placements.  Afterwards the post-mortem logs are replayed through
the trace simulator to validate it, exactly as the paper does.

Run:  python examples/live_condor.py [campus|wan] [horizon_days]
"""

import sys

from repro.experiments import run_live_study, validate_simulation


def main() -> None:
    location = sys.argv[1] if len(sys.argv) > 1 else "campus"
    horizon_days = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    print(
        f"running the live emulation: manager on the {location} link, "
        f"{horizon_days:g} simulated day(s)...\n"
    )
    study = run_live_study(
        location,
        horizon=horizon_days * 86400.0,
        n_machines=32,
        n_concurrent_jobs=12,
    )
    print(study.table().render())

    print("\nvalidating the trace simulator against the live logs...\n")
    validation = validate_simulation(study.experiment)
    print(validation.table().render())

    gap = validation.max_efficiency_gap()
    print(
        f"\nlargest live-vs-simulated efficiency gap: {gap:.3f} — the residual\n"
        "comes from variable transfer costs and horizon censoring, the two\n"
        "discrepancy sources Section 5.3 identifies."
    )


if __name__ == "__main__":
    main()
