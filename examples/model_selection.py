"""End-to-end trace collection and automatic model selection.

Reproduces the measurement half of the paper (Section 4): run occupancy
monitor sensors over a simulated desktop fleet for three "months",
harvest the per-machine availability traces, then fit all four candidate
models to each trace and compare their goodness of fit -- the
quantitative treatment the paper notes was missing from prior work.

Run:  python examples/model_selection.py
"""

from collections import Counter

import numpy as np

from repro.condor import collect_traces
from repro.distributions import evaluate_fit, fit_all_models, select_best_model
from repro.traces import SyntheticPoolConfig
from repro.traces.synthetic import _draw_ground_truth

N_MACHINES = 16
HORIZON = 90 * 86400.0  # three simulated months


def main() -> None:
    rng = np.random.default_rng(11)
    pool_config = SyntheticPoolConfig()
    ground_truths = {
        f"desk-{i:03d}": _draw_ground_truth(pool_config, rng) for i in range(N_MACHINES)
    }
    print(f"collecting occupancy traces from {N_MACHINES} desktops "
          f"({HORIZON / 86400:.0f} simulated days)...\n")
    pool = collect_traces(ground_truths, horizon=HORIZON, rng=rng, min_observations=30)

    winners: Counter[str] = Counter()
    print(f"{'machine':10s} {'n':>4s} {'truth':>18s} {'best (BIC)':>12s} "
          f"{'KS(exp)':>8s} {'KS(weib)':>9s} {'KS(h2)':>8s}")
    for trace in pool:
        train, test = trace.split(25)
        suite = fit_all_models(train)
        best_name, _ = select_best_model(suite, test, criterion="bic")
        winners[best_name] += 1
        ks = {name: evaluate_fit(dist, test).ks for name, dist in suite.items()}
        truth = ground_truths[trace.machine_id].name
        print(
            f"{trace.machine_id:10s} {len(trace):4d} {truth:>18s} {best_name:>12s} "
            f"{ks['exponential']:8.3f} {ks['weibull']:9.3f} {ks['hyperexp2']:8.3f}"
        )

    print("\nmodel-selection winners across the pool:")
    for name, count in winners.most_common():
        print(f"  {name:12s} {count}")
    print(
        "\nAs the paper observes, the exponential is rarely the best description\n"
        "of desktop availability — the heavy-tailed families dominate."
    )


if __name__ == "__main__":
    main()
