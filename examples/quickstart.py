"""Quickstart: fit an availability model, get a checkpoint schedule.

This walks the paper's core loop on one synthetic machine:

1. record availability history (here: sampled from a heavy-tailed
   Weibull, the paper's published reference machine);
2. fit the four candidate models to the first 25 observations;
3. ask each for an optimal checkpoint schedule given the network cost of
   one checkpoint;
4. replay the held-out observations to compare realised efficiency and
   network load.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CheckpointPlanner, SimulationConfig, fit_all_models, simulate_trace
from repro.traces import paper_reference_distribution, synthetic_trace

CHECKPOINT_COST = 110.0  # seconds to push one 500 MB checkpoint (campus link)


def main() -> None:
    rng = np.random.default_rng(7)
    machine = synthetic_trace(
        paper_reference_distribution(), n=125, rng=rng, machine_id="demo"
    )
    train, test = machine.split(25)

    print(f"machine {machine.machine_id}: {len(machine)} availability observations")
    print(f"training mean availability: {train.mean():.0f} s\n")

    suite = fit_all_models(train)
    print(f"{'model':14s} {'T_opt(0)':>10s} {'T_opt(5)':>10s} {'pred.eff':>9s} "
          f"{'realized':>9s} {'MB moved':>10s}")
    for name, dist in suite.items():
        planner = CheckpointPlanner(distribution=dist, model_name=name)
        schedule = planner.schedule(checkpoint_cost=CHECKPOINT_COST)
        result = simulate_trace(
            dist,
            test,
            SimulationConfig(checkpoint_cost=CHECKPOINT_COST),
            machine_id=machine.machine_id,
            model_name=name,
        )
        print(
            f"{name:14s} {schedule.work_interval(0):10.0f} "
            f"{schedule.work_interval(5):10.0f} "
            f"{schedule.expected_efficiency():9.3f} "
            f"{result.efficiency:9.3f} {result.mb_total:10.0f}"
        )

    print(
        "\nNote how the non-memoryless models lengthen their intervals as the\n"
        "machine survives (T_opt(5) > T_opt(0)) — fewer checkpoints, less\n"
        "network traffic, at nearly the same efficiency."
    )


if __name__ == "__main__":
    main()
